package sqlengine

import (
	"fmt"
	"sync"
	"time"

	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// Compiled scenario plans: a SELECT is compiled ONCE into a Plan — a tree
// of pre-bound operator kernels — and then executed many times (one graph
// render evaluates the same rewritten scenario query at every X position
// over every world). Execution is allocation-free after warm-up: every
// operator writes into plan-owned column buffers held by a pooled
// planState, FROM binds catalog tables by name per execution (so one plan
// serves every evaluator/catalog of a scenario), joins produce gather
// index lists into reused buffers, and the result is handed out as a
// PlanResult that recycles its state on Release.
//
// Compilation never fails: SELECT features outside the compiled subset
// (INTO, non-grouped ORDER BY/DISTINCT/LIMIT, >2-table FROM) fall back to
// the interpreted vectorized executor, and within a compiled plan any
// expression the kernel compiler does not cover runs through the
// interpreted evaluator over the same relation — so a compiled plan is
// observationally identical to the interpreted path by construction (the
// differential suite asserts this against both the interpreted vectorized
// engine and the row oracle).
//
// Plans are immutable after CompileSelect/CompileScript and safe for
// concurrent Exec: each execution borrows an isolated planState from the
// plan's pool (concurrent renders of one scenario share one plan).

// Plan is one SELECT compiled into reusable kernels and buffers.
type Plan struct {
	sel            sqlparser.Select
	fallback       bool   // execute via the interpreted path entirely
	fallbackReason string // compile-time reason the plan fell back
	grouped        bool

	fromRefs []sqlparser.TableRef
	// eqL/eqR are the two operands of a single-equality two-table join ON
	// condition, split once at compile time (side resolution still happens
	// at bind, against the catalog-dependent schema).
	eqL, eqR sqlparser.Expr
	whereK   kernel
	items    []itemPlan
	colNames []string

	colRefs []colRefSpec
	// gatherSlot[i] is the fixed slot colRef spec i gathers through when a
	// selection is active.
	gatherSlot []int
	usedAll    bool // materialize every relation column (grouped/fallback needs)
	slots      int  // number of fixed buffer slots

	pool sync.Pool
}

// kernel evaluates one compiled expression over the state's current
// selection, returning a column of st.n rows (usually backed by a plan
// buffer, valid until the execution's PlanResult is released).
type kernel func(st *planState) (*Column, error)

type itemPlan struct {
	k     kernel
	alias string
}

type colRefSpec struct{ table, name string }

// PlanResult is the outcome of one Plan or ScriptPlan execution. Its
// columns may alias plan-owned buffers: read (or copy) everything you need,
// then call Release to recycle the buffers for the next execution. A
// PlanResult from a fallback execution owns fresh columns and Release is a
// no-op; callers treat both identically.
type PlanResult struct {
	ColResult
	st *planState
}

// Release returns the execution's buffers to the plan's pool. The result's
// columns must not be used afterwards. Release is idempotent.
func (r *PlanResult) Release() {
	st := r.st
	if st == nil {
		return
	}
	r.st = nil
	st.e = nil
	st.params = nil
	st.counters = nil
	st.plan.pool.Put(st)
}

// ScriptPlan is a script compiled statement-by-statement.
type ScriptPlan struct {
	plans []*Plan
}

// CompileScript compiles every SELECT of a script; Exec runs them in order
// and returns the last result (nil when the script holds no SELECT).
func CompileScript(script *sqlparser.Script) *ScriptPlan {
	sp := &ScriptPlan{}
	for _, stx := range script.Statements {
		if sel, ok := stx.(sqlparser.Select); ok {
			sp.plans = append(sp.plans, CompileSelect(sel))
		}
	}
	return sp
}

// Exec runs the script's statements on the engine. Intermediate results
// are released; the caller releases the returned one.
func (sp *ScriptPlan) Exec(e *Engine, params map[string]value.Value) (*PlanResult, error) {
	var last *PlanResult
	for _, p := range sp.plans {
		if last != nil {
			last.Release()
		}
		res, err := p.Exec(e, params)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// CompileSelect compiles one SELECT into a reusable plan.
func CompileSelect(sel sqlparser.Select) *Plan {
	p := &Plan{sel: sel, fromRefs: sel.From}
	p.pool.New = func() any { return newPlanState(p) }

	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, item := range sel.Items {
			if hasAggregate(item.Expr) {
				grouped = true
				break
			}
		}
	}
	if sel.Having != nil && !grouped {
		grouped = true
	}
	p.grouped = grouped

	switch {
	case sel.Into != "":
		p.fallbackReason = "select-into"
	case len(sel.From) > 2:
		p.fallbackReason = "from-more-than-two-tables"
	case !grouped && len(sel.OrderBy) > 0:
		p.fallbackReason = "non-grouped-order-by"
	case !grouped && sel.Distinct:
		p.fallbackReason = "non-grouped-distinct"
	case !grouped && sel.Limit >= 0:
		p.fallbackReason = "non-grouped-limit"
	}
	if p.fallbackReason != "" {
		p.fallback = true
		return p
	}
	if len(sel.From) == 2 && sel.From[1].JoinCond != nil {
		p.eqL, p.eqR, _ = splitEquality(sel.From[1].JoinCond)
	}

	c := &compiler{p: p, specIDs: map[colRefSpec]int{}}
	if sel.Where != nil {
		p.whereK = c.compileRoot(sel.Where, nil)
	}
	if grouped {
		// Grouped execution delegates grouping, aggregation and the
		// per-group scalar glue to the interpreted grouped executor over
		// the compiled FROM/WHERE relation — lazy per-group aggregate
		// argument evaluation is part of the engines' error semantics.
		p.usedAll = true
		return p
	}
	aliases := map[string]int{}
	for i, item := range sel.Items {
		p.items = append(p.items, itemPlan{k: c.compileRoot(item.Expr, aliases), alias: item.Alias})
		p.colNames = append(p.colNames, outputName(item, i))
		if item.Alias != "" {
			aliases[item.Alias] = i
		}
	}
	return p
}

// Shardable reports whether the plan's output can be computed over disjoint
// row ranges of its FIRST FROM table and concatenated in range order to
// reproduce the whole execution bit for bit. That holds exactly for the
// compiled non-grouped plans: every compiled operator is row-wise over the
// FROM relation, the relation is materialized in first-table-major order
// (single table directly; cross products repeat the left side row-wise;
// hash and interpreted joins probe with the left side in order), and WHERE
// only filters rows without reordering. Grouped plans collapse rows and
// fallback plans may reorder them (ORDER BY, DISTINCT, LIMIT, INTO,
// 3+-table FROM), so neither is shardable. The Monte Carlo executor keys
// world sharding off this: a shardable scenario plan evaluated on world
// ranges [lo,hi) yields partial outputs whose concatenation is identical to
// the single-range execution.
func (p *Plan) Shardable() bool { return !p.fallback && !p.grouped }

// Exec runs the plan against an engine's catalog. On a RowMode engine or a
// fallback plan, execution routes through the interpreted paths.
func (p *Plan) Exec(e *Engine, params map[string]value.Value) (*PlanResult, error) {
	return p.ExecCounted(e, params, nil)
}

// ExecCounted is Exec with per-operator statistics: when c is non-nil the
// execution fills it with relation cardinalities, the join strategy, the
// fallback reason, and per-phase wall time. With c == nil no measurement
// happens — Exec's hot path is byte-for-byte the same work as before.
func (p *Plan) ExecCounted(e *Engine, params map[string]value.Value, c *ExecCounters) (*PlanResult, error) {
	if p.fallback || e.RowMode {
		var t0 time.Time
		if c != nil {
			c.Fallback = true
			c.FallbackReason = p.fallbackReason
			if !p.fallback {
				c.FallbackReason = "row-mode-engine"
			}
			c.Grouped = p.grouped
			t0 = obs.Now()
		}
		cres, err := e.ExecSelectColumnar(p.sel, params)
		if err != nil {
			return nil, err
		}
		if c != nil {
			c.EvalNS += obs.Since(t0).Nanoseconds()
			if len(cres.Columns) > 0 {
				c.RowsOut = int64(cres.Columns[0].Len())
			}
		}
		return &PlanResult{ColResult: *cres}, nil
	}
	st := p.pool.Get().(*planState)
	st.begin(e, params)
	st.counters = c
	res, err := st.run()
	if err != nil {
		st.e = nil
		st.params = nil
		st.counters = nil
		p.pool.Put(st)
		return nil, err
	}
	return res, nil
}

// colSlot is one reusable column buffer: typed backing vectors grown on
// demand and reused across executions, plus the Column header handed out.
type colSlot struct {
	col   Column
	f     []float64
	i     []int64
	s     []string
	b     []bool
	v     []value.Value
	nulls bitmap
}

func (sl *colSlot) floatCol(n int) (*Column, []float64) {
	if cap(sl.f) < n {
		sl.f = make([]float64, n)
	}
	sl.f = sl.f[:n]
	sl.col = Column{kind: ColFloat, n: n, f: sl.f}
	return &sl.col, sl.f
}

func (sl *colSlot) intCol(n int) (*Column, []int64) {
	if cap(sl.i) < n {
		sl.i = make([]int64, n)
	}
	sl.i = sl.i[:n]
	sl.col = Column{kind: ColInt, n: n, i: sl.i}
	return &sl.col, sl.i
}

func (sl *colSlot) boolCol(n int) (*Column, []bool) {
	if cap(sl.b) < n {
		sl.b = make([]bool, n)
	}
	sl.b = sl.b[:n]
	sl.col = Column{kind: ColBool, n: n, b: sl.b}
	return &sl.col, sl.b
}

func (sl *colSlot) stringCol(n int) (*Column, []string) {
	if cap(sl.s) < n {
		sl.s = make([]string, n)
	}
	sl.s = sl.s[:n]
	sl.col = Column{kind: ColString, n: n, s: sl.s}
	return &sl.col, sl.s
}

func (sl *colSlot) boxedCol(n int) (*Column, []value.Value) {
	if cap(sl.v) < n {
		sl.v = make([]value.Value, n)
	}
	sl.v = sl.v[:n]
	sl.col = Column{kind: ColBoxed, n: n, v: sl.v}
	return &sl.col, sl.v
}

func (sl *colSlot) nullCol(n int) *Column {
	sl.col = Column{kind: ColNull, n: n}
	return &sl.col
}

// clearedBitmap returns the slot's reusable null bitmap, zeroed, sized for
// n rows.
func (sl *colSlot) clearedBitmap(n int) bitmap {
	words := (n + 63) / 64
	if cap(sl.nulls) < words {
		sl.nulls = make(bitmap, words)
	}
	sl.nulls = sl.nulls[:words]
	for i := range sl.nulls {
		sl.nulls[i] = 0
	}
	return sl.nulls
}

// floatsInto returns the column's rows as a float64 view, widening int
// columns into the slot's buffer (no allocation after warm-up). Only valid
// for typed numeric columns.
func (sl *colSlot) floatsInto(c *Column) []float64 {
	if c.kind == ColFloat {
		return c.f
	}
	if cap(sl.f) < c.n {
		sl.f = make([]float64, c.n)
	}
	sl.f = sl.f[:c.n]
	intsToFloatsInto(sl.f, c.i)
	return sl.f
}

// planState is the per-execution scratch: the bound relation, selection,
// buffer slots and caches. States are pooled per plan and safe to reuse
// serially; concurrent executions draw distinct states.
type planState struct {
	plan     *Plan
	e        *Engine
	params   map[string]value.Value
	counters *ExecCounters // nil on uncounted runs

	schema  []colBinding
	relCols []*Column
	rel     vRel
	accRel  vRel // join inputs, state-owned so they never escape
	nextRel vRel
	needed  []bool

	colIdx []int     // per colRef spec: resolved schema index (-1: unresolved)
	baseG  []*Column // per colRef spec: selection-gathered column cache

	sel []int // nil = identity selection over rel
	n   int

	selBuf []int
	joinL  []int
	joinR  []int
	build  buildTable // pooled hash-join build-side state

	fixSlots []*colSlot
	dynSlots []*colSlot
	dynNext  int

	itemCols []*Column
	extras   map[string]*Column
	pres     PlanResult

	cs caseScratch
}

// caseScratch is the fused-CASE kernel's per-execution operand scratch.
// Fused operands are simple (no nested CASE), so one scratch per state
// suffices.
type caseScratch struct {
	condLC, condRC []*Column
	condLV, condRV []value.Value
	outC           []*Column
	outV           []value.Value
	masks          [][]bool
	// Primitive output descriptors, precomputed before the pick loop so
	// the per-row scan touches no boxed values: for arm w, either
	// outColF/outColI[w] is the source slice, or outConstF/outConstI[w]
	// holds the constant.
	outColF   [][]float64
	outColI   [][]int64
	outNulls  []bitmap
	outConstF []float64
	outConstI []int64
}

func (cs *caseScratch) reset(nWhens int) {
	grow := func(n int) {
		if cap(cs.condLC) < n {
			cs.condLC = make([]*Column, n)
			cs.condRC = make([]*Column, n)
			cs.condLV = make([]value.Value, n)
			cs.condRV = make([]value.Value, n)
			cs.outC = make([]*Column, n)
			cs.outV = make([]value.Value, n)
			cs.masks = make([][]bool, n)
			cs.outColF = make([][]float64, n)
			cs.outColI = make([][]int64, n)
			cs.outNulls = make([]bitmap, n)
			cs.outConstF = make([]float64, n)
			cs.outConstI = make([]int64, n)
		}
	}
	grow(nWhens)
	cs.condLC = cs.condLC[:nWhens]
	cs.condRC = cs.condRC[:nWhens]
	cs.condLV = cs.condLV[:nWhens]
	cs.condRV = cs.condRV[:nWhens]
	cs.outC = cs.outC[:nWhens]
	cs.outV = cs.outV[:nWhens]
	cs.masks = cs.masks[:nWhens]
	cs.outColF = cs.outColF[:nWhens]
	cs.outColI = cs.outColI[:nWhens]
	cs.outNulls = cs.outNulls[:nWhens]
	cs.outConstF = cs.outConstF[:nWhens]
	cs.outConstI = cs.outConstI[:nWhens]
}

func newPlanState(p *Plan) *planState {
	st := &planState{
		plan:     p,
		colIdx:   make([]int, len(p.colRefs)),
		baseG:    make([]*Column, len(p.colRefs)),
		fixSlots: make([]*colSlot, p.slots),
		itemCols: make([]*Column, len(p.items)),
		extras:   make(map[string]*Column, len(p.items)),
	}
	for i := range st.fixSlots {
		st.fixSlots[i] = &colSlot{}
	}
	return st
}

func (st *planState) begin(e *Engine, params map[string]value.Value) {
	st.e = e
	st.params = params
	st.dynNext = 0
	st.sel = nil
	st.n = 0
	clear(st.extras)
}

func (st *planState) slot(id int) *colSlot { return st.fixSlots[id] }

func (st *planState) dynSlot() *colSlot {
	if st.dynNext == len(st.dynSlots) {
		st.dynSlots = append(st.dynSlots, &colSlot{})
	}
	sl := st.dynSlots[st.dynNext]
	st.dynNext++
	return sl
}

func (st *planState) clearGatherCache() {
	for i := range st.baseG {
		st.baseG[i] = nil
	}
}

// run executes the plan over the engine bound by begin. Phase timing is
// taken only when the execution carries counters, so uncounted runs pay a
// nil check per phase and nothing else.
func (st *planState) run() (*PlanResult, error) {
	p := st.plan
	c := st.counters
	var t0 time.Time
	if c != nil {
		t0 = obs.Now()
	}
	if err := st.bindFrom(); err != nil {
		return nil, err
	}
	st.sel, st.n = nil, st.rel.n
	st.clearGatherCache()
	if c != nil {
		now := obs.Now()
		c.BindNS += now.Sub(t0).Nanoseconds()
		c.RowsIn = int64(st.rel.n)
		c.Grouped = p.grouped
		t0 = now
	}
	if p.whereK != nil {
		cond, err := p.whereK(st)
		if err != nil {
			return nil, err
		}
		if cap(st.selBuf) < st.n {
			st.selBuf = make([]int, 0, st.n)
		}
		st.selBuf = truthyKeepInto(cond, st.selBuf[:0])
		if c != nil {
			now := obs.Now()
			c.WhereNS += now.Sub(t0).Nanoseconds()
			c.WhereIn = int64(st.n)
			c.WhereOut = int64(len(st.selBuf))
			t0 = now
		}
		st.sel = st.selBuf
		st.n = len(st.sel)
		st.clearGatherCache()
	}
	if p.grouped {
		res, err := st.runGrouped()
		if c != nil && err == nil {
			c.EvalNS += obs.Since(t0).Nanoseconds()
			if len(res.Columns) > 0 {
				c.RowsOut = int64(res.Columns[0].Len())
			}
		}
		return res, err
	}
	for i := range p.items {
		col, err := p.items[i].k(st)
		if err != nil {
			return nil, err
		}
		st.itemCols[i] = col
		if a := p.items[i].alias; a != "" {
			st.extras[a] = col
		}
	}
	if c != nil {
		c.EvalNS += obs.Since(t0).Nanoseconds()
		c.RowsOut = int64(st.n)
	}
	st.pres = PlanResult{ColResult: ColResult{Cols: p.colNames, Columns: st.itemCols}, st: st}
	return &st.pres, nil
}

// runGrouped hands the filtered relation to the interpreted grouped
// executor (shared with ExecSelectColumnar), so grouped semantics — lazy
// per-group aggregate evaluation, HAVING, ORDER BY contexts — are the
// interpreted path's by construction.
func (st *planState) runGrouped() (*PlanResult, error) {
	p := st.plan
	fr := frame{rows: st.sel, n: st.n}
	res, orderEnvs, err := st.e.execGroupedVec(p.sel, &st.rel, fr, st.params)
	if err != nil {
		return nil, err
	}
	if p.sel.Distinct {
		res, orderEnvs = dedupeRows(res, orderEnvs)
	}
	if len(p.sel.OrderBy) > 0 {
		if err := st.e.orderResult(res, orderEnvs, p.sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if p.sel.Limit >= 0 && int64(len(res.Rows)) > p.sel.Limit {
		res.Rows = res.Rows[:p.sel.Limit]
	}
	cres := colResultFromResult(res)
	st.pres = PlanResult{ColResult: *cres, st: st}
	return &st.pres, nil
}

// bindFrom resolves the FROM tables in the engine's catalog, builds the
// combined schema, resolves the plan's column references against it, and
// materializes the source relation — directly (single table), via tiled
// gather lists (cross product), via the hash equi-join, or through the
// interpreted join for every other shape. Only columns the plan actually
// uses are materialized on the fast paths.
func (st *planState) bindFrom() error {
	p := st.plan
	st.schema = st.schema[:0]
	st.relCols = st.relCols[:0]
	if len(p.fromRefs) == 0 {
		st.rel = vRel{n: 1}
		st.resolveSpecs()
		return nil
	}
	var tables [2]*ColTable
	for i, ref := range p.fromRefs {
		ct, ok := st.e.Catalog.GetColumns(ref.Name)
		if !ok {
			return fmt.Errorf("sqlengine: unknown table %q", ref.Name)
		}
		tables[i] = ct
		binding := ref.Name
		if ref.Alias != "" {
			binding = ref.Alias
		}
		for _, c := range ct.Cols {
			st.schema = append(st.schema, colBinding{table: binding, name: c})
		}
	}
	st.resolveSpecs()

	if len(p.fromRefs) == 1 {
		st.relCols = append(st.relCols, tables[0].Columns...)
		st.rel = vRel{schema: st.schema, cols: st.relCols, n: tables[0].NumRows()}
		return nil
	}

	nAcc := len(tables[0].Cols)
	st.accRel = vRel{schema: st.schema[:nAcc], cols: tables[0].Columns, n: tables[0].NumRows()}
	st.nextRel = vRel{schema: st.schema[nAcc:], cols: tables[1].Columns, n: tables[1].NumRows()}
	acc, next := &st.accRel, &st.nextRel
	ref := p.fromRefs[1]

	switch {
	case ref.JoinCond == nil && !ref.LeftJoin:
		// Cross product: every needed left column is repeated row-wise and
		// every needed right column tiled, straight into the reusable
		// buffers — no gather index lists, no quadratic intermediates
		// beyond the output itself.
		if c := st.counters; c != nil {
			c.JoinKind = "cross"
			c.BuildRows = int64(next.n)
			c.ProbeRows = int64(acc.n)
		}
		n := acc.n * next.n
		for j, c := range acc.cols {
			if !st.needed[j] {
				st.relCols = append(st.relCols, nil)
				continue
			}
			st.relCols = append(st.relCols, crossRepeatInto(st.dynSlot(), c, next.n))
		}
		for j, c := range next.cols {
			if !st.needed[len(acc.cols)+j] {
				st.relCols = append(st.relCols, nil)
				continue
			}
			st.relCols = append(st.relCols, crossTileInto(st.dynSlot(), c, acc.n))
		}
		st.rel = vRel{schema: st.schema, cols: st.relCols, n: n}
		return nil
	case ref.JoinCond != nil && p.eqL != nil && acc.n > 0 && next.n > 0:
		if lx, rx, ok := equiJoinSides(p.eqL, p.eqR, st.schema, nAcc); ok {
			outL, outR, hashed, err := st.e.hashEquiJoin(acc, next, lx, rx, ref.LeftJoin, st.params, st.joinL[:0], st.joinR[:0], &st.build)
			if err != nil {
				return err
			}
			if hashed {
				if c := st.counters; c != nil {
					c.JoinKind = "hash"
					c.BuildRows = int64(next.n)
					c.ProbeRows = int64(acc.n)
				}
				st.joinL, st.joinR = outL, outR
				st.materializeJoin(acc, next, outL, outR)
				return nil
			}
		}
	}
	// Everything else (non-equality ON, LEFT JOIN without ON, unhashable
	// keys, empty sides with conditions): interpreted join, fully
	// materialized.
	if c := st.counters; c != nil {
		c.JoinKind = "interpreted"
		c.BuildRows = int64(next.n)
		c.ProbeRows = int64(acc.n)
	}
	joined, err := st.e.joinVec(acc, next, ref, st.params)
	if err != nil {
		return err
	}
	st.rel = *joined
	return nil
}

// resolveSpecs binds the plan's column references against the current
// schema and derives which relation columns must be materialized.
// Resolution failures are deliberately ignored here: the referencing
// kernel reports them if and when it actually evaluates, exactly like the
// interpreted evaluator.
func (st *planState) resolveSpecs() {
	p := st.plan
	if cap(st.needed) < len(st.schema) {
		st.needed = make([]bool, len(st.schema))
	}
	st.needed = st.needed[:len(st.schema)]
	for i := range st.needed {
		st.needed[i] = p.usedAll
	}
	for i, spec := range p.colRefs {
		idx := findBinding(st.schema, spec.table, spec.name)
		st.colIdx[i] = idx
		if idx >= 0 {
			st.needed[idx] = true
		}
	}
}

// materializeJoin gathers the needed combined columns through the plan
// buffers using the (outL, outR) index lists; -1 right entries pad NULL
// (LEFT JOIN).
func (st *planState) materializeJoin(acc, next *vRel, outL, outR []int) {
	n := len(outL)
	for j, c := range acc.cols {
		if !st.needed[j] {
			st.relCols = append(st.relCols, nil)
			continue
		}
		st.relCols = append(st.relCols, gatherPadInto(st.dynSlot(), c, outL))
	}
	for j, c := range next.cols {
		if !st.needed[len(acc.cols)+j] {
			st.relCols = append(st.relCols, nil)
			continue
		}
		st.relCols = append(st.relCols, gatherPadInto(st.dynSlot(), c, outR))
	}
	st.rel = vRel{schema: st.schema, cols: st.relCols, n: n}
}

// colRefCol resolves one compiled column reference over the current
// selection, caching the gathered column for the rest of the pass (several
// expressions usually reference the same base columns).
func (st *planState) colRefCol(spec int) (*Column, error) {
	if c := st.baseG[spec]; c != nil {
		return c, nil
	}
	idx := st.colIdx[spec]
	if idx < 0 {
		// Unresolved at bind: surface the interpreted path's error now.
		ref := st.plan.colRefs[spec]
		_, err := lookupBinding(st.schema, ref.table, ref.name)
		if err == nil {
			err = fmt.Errorf("sqlengine: column %q resolved inconsistently", ref.name)
		}
		return nil, err
	}
	base := st.rel.cols[idx]
	if st.sel == nil {
		st.baseG[spec] = base
		return base, nil
	}
	col := gatherPadInto(st.slot(st.plan.gatherSlot[spec]), base, st.sel)
	st.baseG[spec] = col
	return col, nil
}

// gatherPadInto is Column.gatherPad writing through a reusable slot buffer
// (-1 indexes pad NULL rows).
func gatherPadInto(sl *colSlot, c *Column, idx []int) *Column {
	n := len(idx)
	switch c.kind {
	case ColNull:
		return sl.nullCol(n)
	case ColBoxed:
		_, out := sl.boxedCol(n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.v[i]
			} else {
				out[j] = value.Null
			}
		}
		return &sl.col
	}
	var nulls bitmap
	srcNulls := c.nulls
	pad := false
	for _, i := range idx {
		if i < 0 {
			pad = true
			break
		}
	}
	if srcNulls != nil || pad {
		nulls = sl.clearedBitmap(n)
		hasNull := false
		for j, i := range idx {
			if i < 0 || (srcNulls != nil && srcNulls.get(i)) {
				nulls.set(j)
				hasNull = true
			}
		}
		if !hasNull {
			nulls = nil
		}
	}
	switch c.kind {
	case ColFloat:
		_, out := sl.floatCol(n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.f[i]
			} else {
				out[j] = 0
			}
		}
	case ColInt:
		_, out := sl.intCol(n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.i[i]
			} else {
				out[j] = 0
			}
		}
	case ColString:
		_, out := sl.stringCol(n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.s[i]
			} else {
				out[j] = ""
			}
		}
	case ColBool:
		_, out := sl.boolCol(n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.b[i]
			} else {
				out[j] = false
			}
		}
	}
	sl.col.nulls = nulls
	return &sl.col
}

// crossRepeatInto materializes the left side of a cross product: each of
// the column's rows repeated `times` consecutively (worlds-major order).
func crossRepeatInto(sl *colSlot, c *Column, times int) *Column {
	n := c.n * times
	switch c.kind {
	case ColNull:
		return sl.nullCol(n)
	case ColBoxed:
		_, out := sl.boxedCol(n)
		k := 0
		for i := 0; i < c.n; i++ {
			v := c.v[i]
			for r := 0; r < times; r++ {
				out[k] = v
				k++
			}
		}
		return &sl.col
	}
	var nulls bitmap
	if c.nulls != nil {
		nulls = sl.clearedBitmap(n)
		for i := 0; i < c.n; i++ {
			if c.nulls.get(i) {
				for r := 0; r < times; r++ {
					nulls.set(i*times + r)
				}
			}
		}
	}
	switch c.kind {
	case ColFloat:
		_, out := sl.floatCol(n)
		k := 0
		for _, v := range c.f {
			for r := 0; r < times; r++ {
				out[k] = v
				k++
			}
		}
	case ColInt:
		_, out := sl.intCol(n)
		k := 0
		for _, v := range c.i {
			for r := 0; r < times; r++ {
				out[k] = v
				k++
			}
		}
	case ColString:
		_, out := sl.stringCol(n)
		k := 0
		for _, v := range c.s {
			for r := 0; r < times; r++ {
				out[k] = v
				k++
			}
		}
	case ColBool:
		_, out := sl.boolCol(n)
		k := 0
		for _, v := range c.b {
			for r := 0; r < times; r++ {
				out[k] = v
				k++
			}
		}
	}
	sl.col.nulls = nulls
	return &sl.col
}

// crossTileInto materializes the right side of a cross product: the whole
// column tiled `count` times (copy per tile, so the dimension side of a
// worlds × dimension join is a handful of memmoves per block).
func crossTileInto(sl *colSlot, c *Column, count int) *Column {
	n := c.n * count
	switch c.kind {
	case ColNull:
		return sl.nullCol(n)
	case ColBoxed:
		_, out := sl.boxedCol(n)
		for t := 0; t < count; t++ {
			copy(out[t*c.n:], c.v)
		}
		return &sl.col
	}
	var nulls bitmap
	if c.nulls != nil {
		nulls = sl.clearedBitmap(n)
		for i := 0; i < c.n; i++ {
			if c.nulls.get(i) {
				for t := 0; t < count; t++ {
					nulls.set(t*c.n + i)
				}
			}
		}
	}
	switch c.kind {
	case ColFloat:
		_, out := sl.floatCol(n)
		for t := 0; t < count; t++ {
			copy(out[t*c.n:], c.f)
		}
	case ColInt:
		_, out := sl.intCol(n)
		for t := 0; t < count; t++ {
			copy(out[t*c.n:], c.i)
		}
	case ColString:
		_, out := sl.stringCol(n)
		for t := 0; t < count; t++ {
			copy(out[t*c.n:], c.s)
		}
	case ColBool:
		_, out := sl.boolCol(n)
		for t := 0; t < count; t++ {
			copy(out[t*c.n:], c.b)
		}
	}
	sl.col.nulls = nulls
	return &sl.col
}

// truthyKeepInto is truthyKeep appending into a reusable buffer.
func truthyKeepInto(c *Column, keep []int) []int {
	switch c.kind {
	case ColNull:
		return keep
	case ColBool:
		for i, v := range c.b {
			if v && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	case ColInt:
		for i, v := range c.i {
			if v != 0 && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	case ColFloat:
		for i, v := range c.f {
			if v != 0 && !(c.nulls != nil && c.nulls.get(i)) {
				keep = append(keep, i)
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if c.Value(i).Truthy() {
				keep = append(keep, i)
			}
		}
	}
	return keep
}

// splatInto broadcasts one value into a slot buffer (the buffer-backed
// splatValue).
func splatInto(sl *colSlot, v value.Value, n int) *Column {
	switch v.Kind() {
	case value.KindInt:
		iv, _ := v.AsInt()
		_, out := sl.intCol(n)
		for i := range out {
			out[i] = iv
		}
	case value.KindFloat:
		fv, _ := v.AsFloat()
		_, out := sl.floatCol(n)
		for i := range out {
			out[i] = fv
		}
	case value.KindString:
		sv := v.AsString()
		_, out := sl.stringCol(n)
		for i := range out {
			out[i] = sv
		}
	case value.KindBool:
		bv, _ := v.AsBool()
		_, out := sl.boolCol(n)
		for i := range out {
			out[i] = bv
		}
	default:
		return sl.nullCol(n)
	}
	return &sl.col
}
