package sqlengine

import (
	"testing"

	"fuzzyprophet/internal/value"
)

// Tests for the dialect features beyond Figure 2's needs: DISTINCT, LEFT
// JOIN and the string builtins.

func featureEngine(t *testing.T) *Engine {
	t.Helper()
	cat := NewCatalog()
	cat.Put(mustTable(t, "orders", []string{"id", "customer", "amount"}, [][]value.Value{
		{value.Int(1), value.Str("acme"), value.Float(100)},
		{value.Int(2), value.Str("acme"), value.Float(250)},
		{value.Int(3), value.Str("globex"), value.Float(75)},
		{value.Int(4), value.Str("initech"), value.Float(75)},
	}))
	cat.Put(mustTable(t, "customers", []string{"name", "region"}, [][]value.Value{
		{value.Str("acme"), value.Str("west")},
		{value.Str("globex"), value.Str("east")},
		// initech intentionally missing for LEFT JOIN tests.
	}))
	return New(cat)
}

func TestSelectDistinct(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, "SELECT DISTINCT customer FROM orders ORDER BY customer;", nil)
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "acme" {
		t.Errorf("first = %v", res.Rows[0])
	}
	// DISTINCT over multiple columns keeps distinct tuples.
	res = runQuery(t, e, "SELECT DISTINCT customer, amount FROM orders;", nil)
	if len(res.Rows) != 4 {
		t.Errorf("tuple-distinct rows = %d", len(res.Rows))
	}
	// Numerically equal INT/FLOAT collapse.
	res = runQuery(t, e, "SELECT DISTINCT amount FROM orders;", nil)
	if len(res.Rows) != 3 {
		t.Errorf("amount-distinct rows = %d", len(res.Rows))
	}
}

func TestDistinctWithOrderByAndLimit(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, "SELECT DISTINCT amount FROM orders ORDER BY amount DESC LIMIT 2;", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if floatAt(t, res, 0, "amount") != 250 || floatAt(t, res, 1, "amount") != 100 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, `SELECT customer, region
		FROM orders LEFT JOIN customers ON orders.customer = customers.name
		ORDER BY id;`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// initech has no customers row: region is NULL.
	last := res.Rows[3]
	if last[0].AsString() != "initech" {
		t.Errorf("last row = %v", last)
	}
	if !last[1].IsNull() {
		t.Errorf("unmatched region should be NULL, got %v", last[1])
	}
	// LEFT OUTER JOIN spelling works too.
	res2 := runQuery(t, e, `SELECT COUNT(*) AS c
		FROM orders LEFT OUTER JOIN customers ON orders.customer = customers.name;`, nil)
	if intAt(t, res2, 0, "c") != 4 {
		t.Errorf("outer join count = %d", intAt(t, res2, 0, "c"))
	}
}

func TestInnerJoinStillFilters(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, `SELECT COUNT(*) AS c
		FROM orders JOIN customers ON orders.customer = customers.name;`, nil)
	if intAt(t, res, 0, "c") != 3 {
		t.Errorf("inner join count = %d", intAt(t, res, 0, "c"))
	}
}

func TestLeftJoinNullHandling(t *testing.T) {
	e := featureEngine(t)
	// Unmatched rows can be selected via IS NULL.
	res := runQuery(t, e, `SELECT customer
		FROM orders LEFT JOIN customers ON orders.customer = customers.name
		WHERE region IS NULL;`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "initech" {
		t.Errorf("anti-join rows = %v", res.Rows)
	}
}

func TestStringFunctions(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, `SELECT UPPER('abc') AS u, LOWER('ABC') AS l,
		LEN('hello') AS n, SUBSTRING('hello', 2, 3) AS sub,
		CONCAT('a', NULL, 'b', 1) AS cat, REPLACE('aaa', 'a', 'b') AS rep,
		TRIM('  x  ') AS tr, LTRIM('  x') AS lt, RTRIM('x  ') AS rt;`, nil)
	checks := map[string]string{
		"u": "ABC", "l": "abc", "sub": "ell", "cat": "ab1",
		"rep": "bbb", "tr": "x", "lt": "x", "rt": "x",
	}
	for col, want := range checks {
		i := res.ColIndex(col)
		if got := res.Rows[0][i].AsString(); got != want {
			t.Errorf("%s = %q, want %q", col, got, want)
		}
	}
	if intAt(t, res, 0, "n") != 5 {
		t.Errorf("LEN = %d", intAt(t, res, 0, "n"))
	}
}

func TestStringFunctionEdgeCases(t *testing.T) {
	e := featureEngine(t)
	res := runQuery(t, e, `SELECT SUBSTRING('abc', 0, 2) AS a,
		SUBSTRING('abc', 10, 2) AS b, SUBSTRING('abc', 2, 99) AS c,
		UPPER(NULL) AS d, LEN(NULL) AS ee, REPLACE(NULL, 'a', 'b') AS f;`, nil)
	if got := res.Rows[0][0].AsString(); got != "ab" {
		t.Errorf("clamped start = %q", got)
	}
	if got := res.Rows[0][1].AsString(); got != "" {
		t.Errorf("past-end = %q", got)
	}
	if got := res.Rows[0][2].AsString(); got != "bc" {
		t.Errorf("long length = %q", got)
	}
	for i := 3; i <= 5; i++ {
		if !res.Rows[0][i].IsNull() {
			t.Errorf("col %d: NULL should propagate", i)
		}
	}
	wantErr(t, e, "SELECT SUBSTRING('abc', 1, -1);", "non-negative")
	wantErr(t, e, "SELECT SUBSTRING('abc', 1);", "3 arguments")
	wantErr(t, e, "SELECT UPPER('a', 'b');", "1 argument")
	wantErr(t, e, "SELECT REPLACE('a', 'b');", "3 arguments")
	wantErr(t, e, "SELECT LEN();", "1 argument")
}

func TestDistinctRoundTripThroughPrinter(t *testing.T) {
	e := featureEngine(t)
	// The canonical printer must preserve DISTINCT and LEFT JOIN.
	res := runQuery(t, e, "SELECT DISTINCT region FROM orders LEFT JOIN customers ON orders.customer = customers.name ORDER BY region;", nil)
	if len(res.Rows) != 3 { // NULL, east, west
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[0][0].IsNull() {
		t.Error("NULL should sort first")
	}
}
