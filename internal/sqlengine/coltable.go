package sqlengine

import (
	"fmt"

	"fuzzyprophet/internal/value"
)

// ColTable is a named columnar relation: the engine's primary physical
// table layout. The Monte Carlo executor materializes the possible-worlds
// table in this form directly from the VG sample vectors (one float column
// per call site, no row transpose), and INTO targets of the vectorized
// executor are stored this way.
type ColTable struct {
	Name    string
	Cols    []string
	Columns []*Column
}

// NewColTable constructs a columnar table, validating the schema the same
// way NewTable does and additionally that every column has the same length.
func NewColTable(name string, cols []string, columns []*Column) (*ColTable, error) {
	if name == "" {
		return nil, fmt.Errorf("sqlengine: table needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqlengine: table %q needs at least one column", name)
	}
	if len(columns) != len(cols) {
		return nil, fmt.Errorf("sqlengine: table %q has %d column vectors, want %d", name, len(columns), len(cols))
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return nil, fmt.Errorf("sqlengine: table %q has duplicate column %q", name, c)
		}
		seen[c] = true
	}
	n := columns[0].Len()
	for i, c := range columns {
		if c.Len() != n {
			return nil, fmt.Errorf("sqlengine: table %q column %q has %d rows, want %d", name, cols[i], c.Len(), n)
		}
	}
	return &ColTable{Name: name, Cols: cols, Columns: columns}, nil
}

// NumRows returns the number of rows.
func (ct *ColTable) NumRows() int {
	if len(ct.Columns) == 0 {
		return 0
	}
	return ct.Columns[0].Len()
}

// ColIndex returns the index of the named column, or -1.
func (ct *ColTable) ColIndex(name string) int {
	for i, c := range ct.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// rowsFromColumns boxes a columnar table into the legacy row layout.
func rowsFromColumns(ct *ColTable) *Table {
	n := ct.NumRows()
	rows := make([][]value.Value, n)
	for i := 0; i < n; i++ {
		row := make([]value.Value, len(ct.Columns))
		for j, c := range ct.Columns {
			row[j] = c.Value(i)
		}
		rows[i] = row
	}
	return &Table{Name: ct.Name, Cols: append([]string(nil), ct.Cols...), Rows: rows}
}

// columnsFromRows converts a row table into columnar form, detecting a
// typed representation per column.
func columnsFromRows(t *Table) *ColTable {
	cols := make([]*Column, len(t.Cols))
	for j := range t.Cols {
		vals := make([]value.Value, len(t.Rows))
		for i, row := range t.Rows {
			vals[i] = row[j]
		}
		cols[j] = ValuesColumn(vals)
	}
	return &ColTable{Name: t.Name, Cols: append([]string(nil), t.Cols...), Columns: cols}
}
