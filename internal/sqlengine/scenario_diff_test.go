package sqlengine_test

import (
	"strings"
	"testing"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
)

// Scenario-level differential tests and the engine render benchmarks: the
// pure TSQL the Query Generator emits for the five example scenarios runs
// over a materialized possible-worlds table on both execution paths. This
// is exactly the per-point render workload of the online mode, isolated
// from VG sampling cost.

// scenarioFixture is one compiled example scenario with its generated SQL
// and synthesized per-site world vectors.
type scenarioFixture struct {
	name    string
	script  *sqlparser.Script
	statics []*sqlengine.Table
	worlds  *sqlengine.ColTable
}

// buildScenarioFixtures compiles the bundled scenarios, generates the pure
// TSQL for their default points and materializes a worlds table with
// deterministic synthetic sample vectors (the engine does not care whether
// they came from a real VG-Function).
func buildScenarioFixtures(tb testing.TB, worlds int) []scenarioFixture {
	tb.Helper()
	reg, err := benchfix.Registry()
	if err != nil {
		tb.Fatal(err)
	}
	var out []scenarioFixture
	for _, name := range sqlparser.ExampleScenarioNames() {
		src := sqlparser.ExampleScenarios()[name]
		scn, err := scenario.Compile(src, reg)
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				tb.Fatal(err)
			}
			if err := scn.AddTable(regions); err != nil {
				tb.Fatal(err)
			}
		}
		sql, err := scn.GenerateSQL(scn.DefaultPoint())
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		script, err := sqlparser.Parse(sql)
		if err != nil {
			tb.Fatalf("%s: generated SQL does not parse: %v\n%s", name, err, sql)
		}
		cols := []string{scenario.WorldColumn}
		ord := make([]int64, worlds)
		for i := range ord {
			ord[i] = int64(i)
		}
		columns := []*sqlengine.Column{sqlengine.IntColumn(ord)}
		for si, site := range scn.Sites {
			samples := make([]float64, worlds)
			src := rng.Derive(20110612, "bench."+name+"."+site.ID, uint64(si))
			for i := range samples {
				// Magnitudes in the rough range of the demo models, so CASE
				// thresholds in the scenarios flip both ways.
				samples[i] = src.Normal(45000, 20000)
			}
			cols = append(cols, site.Column)
			columns = append(columns, sqlengine.FloatColumn(samples))
		}
		wt, err := sqlengine.NewColTable(scenario.WorldsTable, cols, columns)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, scenarioFixture{name: name, script: script, statics: scn.StaticTables, worlds: wt})
	}
	if len(out) != 5 {
		tb.Fatalf("expected the five example scenarios, got %d", len(out))
	}
	return out
}

func (f *scenarioFixture) engine(rowMode bool) *sqlengine.Engine {
	cat := sqlengine.NewCatalog()
	for _, t := range f.statics {
		cat.Put(t)
	}
	cat.PutColumns(f.worlds)
	e := sqlengine.New(cat)
	e.RowMode = rowMode
	return e
}

// TestScenarioSQLDifferential renders every example scenario's generated
// TSQL through both paths and asserts identical per-world outputs.
func TestScenarioSQLDifferential(t *testing.T) {
	for _, f := range buildScenarioFixtures(t, 200) {
		vres, verr := f.engine(false).ExecScript(f.script, nil)
		rres, rerr := f.engine(true).ExecScript(f.script, nil)
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("%s: vectorized err = %v, row err = %v", f.name, verr, rerr)
		}
		if verr != nil {
			t.Fatalf("%s: %v", f.name, verr)
		}
		if strings.Join(vres.Cols, ",") != strings.Join(rres.Cols, ",") {
			t.Fatalf("%s: cols %v vs %v", f.name, vres.Cols, rres.Cols)
		}
		if len(vres.Rows) != len(rres.Rows) {
			t.Fatalf("%s: %d vs %d rows", f.name, len(vres.Rows), len(rres.Rows))
		}
		for i := range vres.Rows {
			for j := range vres.Cols {
				a, b := vres.Rows[i][j], rres.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
					t.Fatalf("%s: world %d col %s: vectorized %v vs row %v", f.name, i, vres.Cols[j], a, b)
				}
			}
		}
	}
}

// BenchmarkEngineRender1000 times the 1000-world render path — parse-free
// execution of each scenario's generated TSQL — on both engines. The
// speedup these report is the one recorded in BENCH_engine.json.
func BenchmarkEngineRender1000(b *testing.B) {
	for _, f := range buildScenarioFixtures(b, 1000) {
		for _, mode := range []struct {
			name string
			row  bool
		}{{"vectorized", false}, {"row", true}} {
			b.Run(f.name+"/"+mode.name, func(b *testing.B) {
				e := f.engine(mode.row)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Each path drains results the way the Monte Carlo
					// executor does (or did): columnar consumers read the
					// typed columns, the row path reads boxed rows.
					if mode.row {
						if _, err := e.ExecScript(f.script, nil); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := e.ExecScriptColumnar(f.script, nil); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
