package sqlengine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
)

// Scenario-level differential tests and the engine render benchmarks: the
// pure TSQL the Query Generator emits for the five example scenarios runs
// over a materialized possible-worlds table on both execution paths. This
// is exactly the per-point render workload of the online mode, isolated
// from VG sampling cost.

// scenarioFixture is one compiled example scenario with its generated SQL
// and synthesized per-site world vectors.
type scenarioFixture struct {
	name    string
	script  *sqlparser.Script
	statics []*sqlengine.Table
	worlds  *sqlengine.ColTable
}

// buildScenarioFixtures compiles the bundled scenarios, generates the pure
// TSQL for their default points and materializes a worlds table with
// deterministic synthetic sample vectors (the engine does not care whether
// they came from a real VG-Function).
func buildScenarioFixtures(tb testing.TB, worlds int) []scenarioFixture {
	tb.Helper()
	reg, err := benchfix.Registry()
	if err != nil {
		tb.Fatal(err)
	}
	var out []scenarioFixture
	for _, name := range sqlparser.ExampleScenarioNames() {
		src := sqlparser.ExampleScenarios()[name]
		scn, err := scenario.Compile(src, reg)
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				tb.Fatal(err)
			}
			if err := scn.AddTable(regions); err != nil {
				tb.Fatal(err)
			}
		}
		sql, err := scn.GenerateSQL(scn.DefaultPoint())
		if err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
		script, err := sqlparser.Parse(sql)
		if err != nil {
			tb.Fatalf("%s: generated SQL does not parse: %v\n%s", name, err, sql)
		}
		cols := []string{scenario.WorldColumn}
		ord := make([]int64, worlds)
		for i := range ord {
			ord[i] = int64(i)
		}
		columns := []*sqlengine.Column{sqlengine.IntColumn(ord)}
		for si, site := range scn.Sites {
			samples := make([]float64, worlds)
			src := rng.Derive(20110612, "bench."+name+"."+site.ID, uint64(si))
			for i := range samples {
				// Magnitudes in the rough range of the demo models, so CASE
				// thresholds in the scenarios flip both ways.
				samples[i] = src.Normal(45000, 20000)
			}
			cols = append(cols, site.Column)
			columns = append(columns, sqlengine.FloatColumn(samples))
		}
		wt, err := sqlengine.NewColTable(scenario.WorldsTable, cols, columns)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, scenarioFixture{name: name, script: script, statics: scn.StaticTables, worlds: wt})
	}
	if len(out) != 5 {
		tb.Fatalf("expected the five example scenarios, got %d", len(out))
	}
	return out
}

func (f *scenarioFixture) engine(rowMode bool) *sqlengine.Engine {
	cat := sqlengine.NewCatalog()
	for _, t := range f.statics {
		cat.Put(t)
	}
	cat.PutColumns(f.worlds)
	e := sqlengine.New(cat)
	e.RowMode = rowMode
	return e
}

// assertSameResults fails unless two results agree exactly (NULL matches
// only NULL).
func assertSameResults(tb testing.TB, name, labelA, labelB string, a, b *sqlengine.Result) {
	tb.Helper()
	if strings.Join(a.Cols, ",") != strings.Join(b.Cols, ",") {
		tb.Fatalf("%s: cols %v (%s) vs %v (%s)", name, a.Cols, labelA, b.Cols, labelB)
	}
	if len(a.Rows) != len(b.Rows) {
		tb.Fatalf("%s: %d rows (%s) vs %d rows (%s)", name, len(a.Rows), labelA, len(b.Rows), labelB)
	}
	for i := range a.Rows {
		for j := range a.Cols {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.IsNull() != bv.IsNull() || (!av.IsNull() && !av.Equal(bv)) {
				tb.Fatalf("%s: world %d col %s: %s %v vs %s %v", name, i, a.Cols[j], labelA, av, labelB, bv)
			}
		}
	}
}

// TestScenarioSQLDifferential renders every example scenario's generated
// TSQL through all three paths — compiled plan, interpreted vectorized,
// row oracle — and asserts identical per-world outputs.
func TestScenarioSQLDifferential(t *testing.T) {
	for _, f := range buildScenarioFixtures(t, 200) {
		vres, verr := f.engine(false).ExecScript(f.script, nil)
		rres, rerr := f.engine(true).ExecScript(f.script, nil)
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("%s: vectorized err = %v, row err = %v", f.name, verr, rerr)
		}
		if verr != nil {
			t.Fatalf("%s: %v", f.name, verr)
		}
		assertSameResults(t, f.name, "vectorized", "row", vres, rres)

		plan := sqlengine.CompileScript(f.script)
		e := f.engine(false)
		for pass := 0; pass < 2; pass++ { // second pass reuses warm buffers
			pres, perr := plan.Exec(e, nil)
			if perr != nil {
				t.Fatalf("%s (compiled pass %d): %v", f.name, pass, perr)
			}
			cres := pres.Result()
			pres.Release()
			assertSameResults(t, f.name, "compiled", "row", cres, rres)
		}
	}
}

// TestScenarioPlanConcurrentRenders exercises the render configuration the
// fpserver session manager runs: many goroutines executing ONE shared
// compiled plan (each with its own engine/catalog, as mc evaluators have).
// Run under -race this asserts the plan's pooled states are properly
// isolated; results must match the row oracle exactly.
func TestScenarioPlanConcurrentRenders(t *testing.T) {
	for _, f := range buildScenarioFixtures(t, 200) {
		rres, rerr := f.engine(true).ExecScript(f.script, nil)
		if rerr != nil {
			t.Fatalf("%s: %v", f.name, rerr)
		}
		plan := sqlengine.CompileScript(f.script)
		const goroutines = 8
		const rendersEach = 10
		var wg sync.WaitGroup
		errCh := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e := f.engine(false)
				for k := 0; k < rendersEach; k++ {
					pres, err := plan.Exec(e, nil)
					if err != nil {
						errCh <- fmt.Errorf("%s: %w", f.name, err)
						return
					}
					cres := pres.Result()
					pres.Release()
					if len(cres.Rows) != len(rres.Rows) {
						errCh <- fmt.Errorf("%s: %d vs %d rows", f.name, len(cres.Rows), len(rres.Rows))
						return
					}
					for i := range cres.Rows {
						for j := range cres.Cols {
							a, b := cres.Rows[i][j], rres.Rows[i][j]
							if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
								errCh <- fmt.Errorf("%s: world %d col %s: %v vs %v", f.name, i, cres.Cols[j], a, b)
								return
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
	}
}

// BenchmarkEngineRender1000 times the 1000-world render path — parse-free
// execution of each scenario's generated TSQL — on the row engine, the
// interpreted vectorized engine, and the compiled-plan path (the Monte
// Carlo executor's configuration since plans landed). The speedups these
// report are the ones recorded in BENCH_engine.json.
func BenchmarkEngineRender1000(b *testing.B) {
	for _, f := range buildScenarioFixtures(b, 1000) {
		for _, mode := range []string{"compiled", "vectorized", "row"} {
			b.Run(f.name+"/"+mode, func(b *testing.B) {
				e := f.engine(mode == "row")
				plan := sqlengine.CompileScript(f.script)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Each path drains results the way the Monte Carlo
					// executor does (or did): columnar consumers read the
					// typed columns, the row path reads boxed rows.
					switch mode {
					case "row":
						if _, err := e.ExecScript(f.script, nil); err != nil {
							b.Fatal(err)
						}
					case "vectorized":
						if _, err := e.ExecScriptColumnar(f.script, nil); err != nil {
							b.Fatal(err)
						}
					default:
						res, err := plan.Exec(e, nil)
						if err != nil {
							b.Fatal(err)
						}
						res.Release()
					}
				}
			})
		}
	}
}
