package sqlengine

import (
	"fmt"

	"fuzzyprophet/internal/value"
)

// ColKind identifies the physical representation of a Column.
type ColKind uint8

// The supported column representations. Typed columns hold an unboxed
// vector plus an optional null bitmap; ColBoxed is the graceful-degradation
// representation for columns whose non-NULL values mix kinds (boxed values
// carry their own NULLs); ColNull is an all-NULL column with no backing
// storage.
const (
	ColNull ColKind = iota
	ColFloat
	ColInt
	ColString
	ColBool
	ColBoxed
)

// String returns the kind's name.
func (k ColKind) String() string {
	switch k {
	case ColNull:
		return "NULL"
	case ColFloat:
		return "FLOAT"
	case ColInt:
		return "INT"
	case ColString:
		return "STRING"
	case ColBool:
		return "BOOL"
	case ColBoxed:
		return "BOXED"
	default:
		return fmt.Sprintf("ColKind(%d)", uint8(k))
	}
}

// bitmap is a fixed-size bit set used as a column null bitmap: bit i set
// means row i is NULL.
type bitmap []uint64

func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitmap) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitmap) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	// Clear the tail bits past n so any() stays exact.
	if tail := n & 63; tail != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << uint(tail)) - 1
	}
}

func (b bitmap) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitmap) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Column is one typed vector of a columnar table or intermediate result:
// the unit of work of the vectorized engine. Columns are immutable once
// built — every operator allocates fresh output columns, so columns may be
// shared freely between catalog tables, intermediate relations and results.
type Column struct {
	kind  ColKind
	n     int
	f     []float64
	i     []int64
	s     []string
	b     []bool
	v     []value.Value
	nulls bitmap // nil when the column has no NULLs (typed kinds only)
}

// FloatColumn wraps a float64 vector as a column without copying. The
// caller must not mutate vals afterwards.
func FloatColumn(vals []float64) *Column {
	return &Column{kind: ColFloat, n: len(vals), f: vals}
}

// SetFloats repoints c at vals as a no-null float column, reusing the
// header allocation. It is the update-in-place companion of FloatColumn for
// owners of long-lived tables (the Monte Carlo executor's per-point worlds
// table); the column must not be concurrently read while repointed.
func (c *Column) SetFloats(vals []float64) {
	*c = Column{kind: ColFloat, n: len(vals), f: vals}
}

// SetInts is SetFloats for int64 vectors.
func (c *Column) SetInts(vals []int64) {
	*c = Column{kind: ColInt, n: len(vals), i: vals}
}

// IntColumn wraps an int64 vector as a column without copying.
func IntColumn(vals []int64) *Column {
	return &Column{kind: ColInt, n: len(vals), i: vals}
}

// StringColumn wraps a string vector as a column without copying.
func StringColumn(vals []string) *Column {
	return &Column{kind: ColString, n: len(vals), s: vals}
}

// BoolColumn wraps a bool vector as a column without copying.
func BoolColumn(vals []bool) *Column {
	return &Column{kind: ColBool, n: len(vals), b: vals}
}

// nullColumn returns an all-NULL column of length n.
func nullColumn(n int) *Column { return &Column{kind: ColNull, n: n} }

// ValuesColumn builds a column from boxed values, choosing the densest
// representation that preserves every value exactly: a single non-NULL kind
// yields a typed vector (with a null bitmap when needed); mixed kinds —
// including INT mixed with FLOAT, whose distinction the row engine
// preserves — fall back to the boxed representation.
func ValuesColumn(vals []value.Value) *Column {
	n := len(vals)
	kind := ColNull
	for _, v := range vals {
		var k ColKind
		switch v.Kind() {
		case value.KindNull:
			continue
		case value.KindInt:
			k = ColInt
		case value.KindFloat:
			k = ColFloat
		case value.KindString:
			k = ColString
		case value.KindBool:
			k = ColBool
		default:
			k = ColBoxed
		}
		if kind == ColNull {
			kind = k
		} else if kind != k {
			kind = ColBoxed
			break
		}
	}
	switch kind {
	case ColNull:
		return nullColumn(n)
	case ColBoxed:
		return &Column{kind: ColBoxed, n: n, v: vals}
	}
	c := &Column{kind: kind, n: n}
	var nulls bitmap
	switch kind {
	case ColInt:
		c.i = make([]int64, n)
	case ColFloat:
		c.f = make([]float64, n)
	case ColString:
		c.s = make([]string, n)
	case ColBool:
		c.b = make([]bool, n)
	}
	for idx, v := range vals {
		if v.IsNull() {
			if nulls == nil {
				nulls = newBitmap(n)
			}
			nulls.set(idx)
			continue
		}
		switch kind {
		case ColInt:
			c.i[idx], _ = v.AsInt()
		case ColFloat:
			c.f[idx], _ = v.AsFloat()
		case ColString:
			c.s[idx] = v.AsString()
		case ColBool:
			c.b[idx], _ = v.AsBool()
		}
	}
	c.nulls = nulls
	return c
}

// Len returns the number of rows.
func (c *Column) Len() int { return c.n }

// Kind returns the physical representation.
func (c *Column) Kind() ColKind { return c.kind }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	switch c.kind {
	case ColNull:
		return true
	case ColBoxed:
		return c.v[i].IsNull()
	default:
		return c.nulls != nil && c.nulls.get(i)
	}
}

// Value boxes row i.
func (c *Column) Value(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	switch c.kind {
	case ColFloat:
		return value.Float(c.f[i])
	case ColInt:
		return value.Int(c.i[i])
	case ColString:
		return value.Str(c.s[i])
	case ColBool:
		return value.Bool(c.b[i])
	case ColBoxed:
		return c.v[i]
	default:
		return value.Null
	}
}

// hasNulls reports whether any row is NULL.
func (c *Column) hasNulls() bool {
	switch c.kind {
	case ColNull:
		return c.n > 0
	case ColBoxed:
		for _, v := range c.v {
			if v.IsNull() {
				return true
			}
		}
		return false
	default:
		return c.nulls != nil && c.nulls.any()
	}
}

// AllStrings reports whether every row is a non-NULL string — the
// categorical-column test the Monte Carlo executor uses to skip columns
// with no distribution to aggregate.
func (c *Column) AllStrings() bool {
	switch c.kind {
	case ColString:
		return !c.hasNulls()
	case ColBoxed:
		for _, v := range c.v {
			if v.Kind() != value.KindString {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Float64s converts the column to a fresh float64 vector, applying the
// value system's numeric coercions per row (bools become 0/1, numeric
// strings parse). A NULL or non-numeric row is an error naming the row.
func (c *Column) Float64s() ([]float64, error) {
	out := make([]float64, c.n)
	switch c.kind {
	case ColFloat:
		if c.nulls == nil || !c.nulls.any() {
			copy(out, c.f)
			return out, nil
		}
	case ColInt:
		if c.nulls == nil || !c.nulls.any() {
			for i, v := range c.i {
				out[i] = float64(v)
			}
			return out, nil
		}
	}
	for i := 0; i < c.n; i++ {
		f, err := c.Value(i).AsFloat()
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

// gather returns a new column holding rows idx[0], idx[1], … of c.
func (c *Column) gather(idx []int) *Column {
	n := len(idx)
	switch c.kind {
	case ColNull:
		return nullColumn(n)
	case ColBoxed:
		out := make([]value.Value, n)
		for j, i := range idx {
			out[j] = c.v[i]
		}
		return &Column{kind: ColBoxed, n: n, v: out}
	}
	out := &Column{kind: c.kind, n: n}
	if c.nulls != nil {
		nulls := newBitmap(n)
		hasNull := false
		for j, i := range idx {
			if c.nulls.get(i) {
				nulls.set(j)
				hasNull = true
			}
		}
		if hasNull {
			out.nulls = nulls
		}
	}
	switch c.kind {
	case ColFloat:
		out.f = make([]float64, n)
		for j, i := range idx {
			out.f[j] = c.f[i]
		}
	case ColInt:
		out.i = make([]int64, n)
		for j, i := range idx {
			out.i[j] = c.i[i]
		}
	case ColString:
		out.s = make([]string, n)
		for j, i := range idx {
			out.s[j] = c.s[i]
		}
	case ColBool:
		out.b = make([]bool, n)
		for j, i := range idx {
			out.b[j] = c.b[i]
		}
	}
	return out
}

// gatherPad is gather with -1 entries producing NULL rows (LEFT JOIN
// padding for the null-extended side).
func (c *Column) gatherPad(idx []int) *Column {
	n := len(idx)
	pad := false
	for _, i := range idx {
		if i < 0 {
			pad = true
			break
		}
	}
	if !pad {
		return c.gather(idx)
	}
	if c.kind == ColNull {
		return nullColumn(n)
	}
	if c.kind == ColBoxed {
		out := make([]value.Value, n)
		for j, i := range idx {
			if i >= 0 {
				out[j] = c.v[i]
			}
		}
		return &Column{kind: ColBoxed, n: n, v: out}
	}
	out := &Column{kind: c.kind, n: n, nulls: newBitmap(n)}
	switch c.kind {
	case ColFloat:
		out.f = make([]float64, n)
	case ColInt:
		out.i = make([]int64, n)
	case ColString:
		out.s = make([]string, n)
	case ColBool:
		out.b = make([]bool, n)
	}
	for j, i := range idx {
		if i < 0 || (c.nulls != nil && c.nulls.get(i)) {
			out.nulls.set(j)
			continue
		}
		switch c.kind {
		case ColFloat:
			out.f[j] = c.f[i]
		case ColInt:
			out.i[j] = c.i[i]
		case ColString:
			out.s[j] = c.s[i]
		case ColBool:
			out.b[j] = c.b[i]
		}
	}
	return out
}

// appendKey appends row i's canonical grouping key to dst — the same
// encoding as value.AppendKey, so the row and columnar engines group and
// de-duplicate identically.
func (c *Column) appendKey(dst []byte, i int) []byte {
	if c.IsNull(i) {
		return value.AppendNullKey(dst)
	}
	switch c.kind {
	case ColFloat:
		return value.AppendFloatKey(dst, c.f[i])
	case ColInt:
		return value.AppendFloatKey(dst, float64(c.i[i]))
	case ColString:
		return value.AppendStringKey(dst, c.s[i])
	case ColBool:
		return value.AppendBoolKey(dst, c.b[i])
	default:
		return value.AppendKey(dst, c.Value(i))
	}
}

// isTypedNumeric reports whether the column is an unboxed numeric vector.
func (c *Column) isTypedNumeric() bool { return c.kind == ColFloat || c.kind == ColInt }

// floats returns the rows as a float64 view: the backing vector for
// ColFloat (not to be mutated), a converted copy for ColInt. Only valid for
// typed numeric columns; NULL rows hold unspecified values.
func (c *Column) floats() []float64 {
	if c.kind == ColFloat {
		return c.f
	}
	out := make([]float64, c.n)
	for i, v := range c.i {
		out[i] = float64(v)
	}
	return out
}
