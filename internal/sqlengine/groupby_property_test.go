package sqlengine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fuzzyprophet/internal/value"
)

// GROUP BY invariants on randomly generated tables:
//  1. Σ per-group COUNT(*) = total row count.
//  2. Σ per-group SUM(x) = total SUM(x).
//  3. per-group MIN ≤ AVG ≤ MAX.
//  4. number of groups = number of distinct key values.
func TestQuickGroupByInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nRows := 1 + r.Intn(200)
		nKeys := 1 + r.Intn(8)
		rows := make([][]value.Value, nRows)
		total := 0.0
		distinct := map[int64]bool{}
		for i := range rows {
			k := int64(r.Intn(nKeys))
			x := float64(r.Intn(2000)-1000) / 4
			rows[i] = []value.Value{value.Int(k), value.Float(x)}
			total += x
			distinct[k] = true
		}
		cat := NewCatalog()
		tbl, err := NewTable("t", []string{"k", "x"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		cat.Put(tbl)
		e := New(cat)

		script := "SELECT k, COUNT(*) AS c, SUM(x) AS s, MIN(x) AS lo, AVG(x) AS a, MAX(x) AS hi FROM t GROUP BY k;"
		res := runQuery(t, e, script, nil)

		if len(res.Rows) != len(distinct) {
			t.Fatalf("trial %d: groups = %d, distinct keys = %d", trial, len(res.Rows), len(distinct))
		}
		var sumCount int64
		var sumSum float64
		for _, row := range res.Rows {
			c, err := row[1].AsInt()
			if err != nil {
				t.Fatal(err)
			}
			sumCount += c
			s, err := row[2].AsFloat()
			if err != nil {
				t.Fatal(err)
			}
			sumSum += s
			lo, _ := row[3].AsFloat()
			a, _ := row[4].AsFloat()
			hi, _ := row[5].AsFloat()
			if lo > a+1e-9 || a > hi+1e-9 {
				t.Fatalf("trial %d: MIN %g AVG %g MAX %g out of order", trial, lo, a, hi)
			}
		}
		if sumCount != int64(nRows) {
			t.Fatalf("trial %d: counts sum to %d, want %d", trial, sumCount, nRows)
		}
		if math.Abs(sumSum-total) > 1e-6*(1+math.Abs(total)) {
			t.Fatalf("trial %d: sums %g, want %g", trial, sumSum, total)
		}
	}
}

// WHERE partition invariant: for any threshold, |rows < T| + |rows >= T| =
// |rows| (no NULLs involved).
func TestQuickWherePartition(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nRows := 1 + r.Intn(100)
		rows := make([][]value.Value, nRows)
		for i := range rows {
			rows[i] = []value.Value{value.Float(float64(r.Intn(100)))}
		}
		cat := NewCatalog()
		tbl, err := NewTable("t", []string{"x"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		cat.Put(tbl)
		e := New(cat)
		threshold := r.Intn(100)
		below := runQuery(t, e, fmt.Sprintf("SELECT COUNT(*) AS c FROM t WHERE x < %d;", threshold), nil)
		atOrAbove := runQuery(t, e, fmt.Sprintf("SELECT COUNT(*) AS c FROM t WHERE x >= %d;", threshold), nil)
		b, _ := below.Rows[0][0].AsInt()
		a, _ := atOrAbove.Rows[0][0].AsInt()
		if b+a != int64(nRows) {
			t.Fatalf("trial %d: partition %d + %d != %d", trial, b, a, nRows)
		}
	}
}

// ORDER BY invariant: output is sorted and is a permutation of the input.
func TestQuickOrderByPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		nRows := 1 + r.Intn(100)
		rows := make([][]value.Value, nRows)
		sum := 0.0
		for i := range rows {
			x := float64(r.Intn(1000))
			rows[i] = []value.Value{value.Float(x)}
			sum += x
		}
		cat := NewCatalog()
		tbl, err := NewTable("t", []string{"x"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		cat.Put(tbl)
		e := New(cat)
		res := runQuery(t, e, "SELECT x FROM t ORDER BY x;", nil)
		if len(res.Rows) != nRows {
			t.Fatalf("trial %d: rows = %d", trial, len(res.Rows))
		}
		var outSum, prev float64
		prev = math.Inf(-1)
		for _, row := range res.Rows {
			x, _ := row[0].AsFloat()
			if x < prev {
				t.Fatalf("trial %d: not sorted", trial)
			}
			prev = x
			outSum += x
		}
		if math.Abs(outSum-sum) > 1e-6 {
			t.Fatalf("trial %d: not a permutation (sum %g vs %g)", trial, outSum, sum)
		}
	}
}
