package sqlengine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

// Oracle tests: randomly generated arithmetic/comparison expressions are
// evaluated both by the engine and by a direct Go interpreter; results must
// agree exactly.

type oracleValue struct {
	f      float64
	isNull bool
	isErr  bool
}

func oracleEval(e sqlparser.Expr) oracleValue {
	switch n := e.(type) {
	case sqlparser.Literal:
		if n.Val.IsNull() {
			return oracleValue{isNull: true}
		}
		f, err := n.Val.AsFloat()
		if err != nil {
			return oracleValue{isErr: true}
		}
		return oracleValue{f: f}
	case sqlparser.Unary:
		x := oracleEval(n.X)
		if x.isErr {
			return x
		}
		if n.Op == "-" {
			if x.isNull {
				return x
			}
			return oracleValue{f: -x.f}
		}
		if x.isNull {
			return x
		}
		if x.f != 0 {
			return oracleValue{f: 0}
		}
		return oracleValue{f: 1}
	case sqlparser.Binary:
		l := oracleEval(n.L)
		if l.isErr {
			return l
		}
		// Short-circuit semantics for AND/OR.
		if n.Op == "AND" {
			if !l.isNull && l.f == 0 {
				return oracleValue{f: 0}
			}
			r := oracleEval(n.R)
			if r.isErr {
				return r
			}
			if !r.isNull && r.f == 0 {
				return oracleValue{f: 0}
			}
			if l.isNull || r.isNull {
				return oracleValue{isNull: true}
			}
			return oracleValue{f: 1}
		}
		if n.Op == "OR" {
			if !l.isNull && l.f != 0 {
				return oracleValue{f: 1}
			}
			r := oracleEval(n.R)
			if r.isErr {
				return r
			}
			if !r.isNull && r.f != 0 {
				return oracleValue{f: 1}
			}
			if l.isNull || r.isNull {
				return oracleValue{isNull: true}
			}
			return oracleValue{f: 0}
		}
		r := oracleEval(n.R)
		if r.isErr {
			return r
		}
		if l.isNull || r.isNull {
			return oracleValue{isNull: true}
		}
		switch n.Op {
		case "+":
			return oracleValue{f: l.f + r.f}
		case "-":
			return oracleValue{f: l.f - r.f}
		case "*":
			return oracleValue{f: l.f * r.f}
		case "/":
			if r.f == 0 {
				return oracleValue{isErr: true}
			}
			return oracleValue{f: l.f / r.f}
		case "=":
			return boolVal(l.f == r.f)
		case "<>":
			return boolVal(l.f != r.f)
		case "<":
			return boolVal(l.f < r.f)
		case "<=":
			return boolVal(l.f <= r.f)
		case ">":
			return boolVal(l.f > r.f)
		case ">=":
			return boolVal(l.f >= r.f)
		}
		return oracleValue{isErr: true}
	case sqlparser.Case:
		for _, w := range n.Whens {
			c := oracleEval(w.Cond)
			if c.isErr {
				return c
			}
			if !c.isNull && c.f != 0 {
				return oracleEval(w.Then)
			}
		}
		if n.Else != nil {
			return oracleEval(n.Else)
		}
		return oracleValue{isNull: true}
	default:
		return oracleValue{isErr: true}
	}
}

func boolVal(b bool) oracleValue {
	if b {
		return oracleValue{f: 1}
	}
	return oracleValue{f: 0}
}

// randomNumExpr and randomBoolExpr generate well-typed expressions: the
// engine (correctly) refuses to compare numbers with booleans, so the
// generator respects the type discipline.
func randomNumExpr(r *rand.Rand, depth int) sqlparser.Expr {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return sqlparser.Literal{Val: value.Null}
		case 1, 2:
			return sqlparser.Literal{Val: value.Int(int64(r.Intn(21) - 10))}
		default:
			return sqlparser.Literal{Val: value.Float(float64(r.Intn(160)-80) / 8)}
		}
	}
	switch r.Intn(3) {
	case 0:
		ops := []string{"+", "-", "*", "/"}
		return sqlparser.Binary{Op: ops[r.Intn(len(ops))],
			L: randomNumExpr(r, depth-1), R: randomNumExpr(r, depth-1)}
	case 1:
		return sqlparser.Unary{Op: "-", X: randomNumExpr(r, depth-1)}
	default:
		n := 1 + r.Intn(2)
		whens := make([]sqlparser.When, n)
		for i := range whens {
			whens[i] = sqlparser.When{Cond: randomBoolExpr(r, depth-1), Then: randomNumExpr(r, depth-1)}
		}
		c := sqlparser.Case{Whens: whens}
		if r.Intn(2) == 0 {
			c.Else = randomNumExpr(r, depth-1)
		}
		return c
	}
}

func randomBoolExpr(r *rand.Rand, depth int) sqlparser.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return sqlparser.Binary{Op: ops[r.Intn(len(ops))],
			L: randomNumExpr(r, 0), R: randomNumExpr(r, 0)}
	}
	switch r.Intn(3) {
	case 0:
		return sqlparser.Binary{Op: "AND", L: randomBoolExpr(r, depth-1), R: randomBoolExpr(r, depth-1)}
	case 1:
		return sqlparser.Binary{Op: "OR", L: randomBoolExpr(r, depth-1), R: randomBoolExpr(r, depth-1)}
	default:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return sqlparser.Binary{Op: ops[r.Intn(len(ops))],
			L: randomNumExpr(r, depth-1), R: randomNumExpr(r, depth-1)}
	}
}

// TestEngineAgreesWithOracle runs every random expression through BOTH
// execution paths — the vectorized default and the legacy row engine — and
// checks each against the independent Go interpreter, plus the two engines
// against each other (including agreement on whether evaluation errors).
func TestEngineAgreesWithOracle(t *testing.T) {
	vec := New(NewCatalog())
	row := New(NewCatalog())
	row.RowMode = true
	r := rand.New(rand.NewSource(8))
	checked := 0
	for i := 0; i < 2000; i++ {
		var expr sqlparser.Expr
		if i%3 == 0 {
			expr = randomBoolExpr(r, 3)
		} else {
			expr = randomNumExpr(r, 3)
		}
		want := oracleEval(expr)

		src := fmt.Sprintf("SELECT %s AS v;", expr.SQL())
		script, err := sqlparser.Parse(src)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %v\n%s", err, src)
		}
		res, err := vec.ExecScript(script, nil)
		rowRes, rowErr := row.ExecScript(script, nil)

		// Differential: both paths must agree on error-ness and value.
		if (err == nil) != (rowErr == nil) {
			t.Fatalf("%s: vectorized err=%v, row err=%v", expr.SQL(), err, rowErr)
		}
		if err == nil {
			got, rowGot := res.Rows[0][0], rowRes.Rows[0][0]
			if got.IsNull() != rowGot.IsNull() || (!got.IsNull() && !got.Equal(rowGot)) {
				t.Fatalf("%s: vectorized = %v, row = %v", expr.SQL(), got, rowGot)
			}
		}

		if want.isErr {
			// The engine may legitimately avoid an error the oracle hit
			// (e.g. short-circuit skipped a division by zero on the
			// other side) — only flag the reverse direction.
			continue
		}
		if err != nil {
			t.Fatalf("engine error for %s: %v (oracle had none)", expr.SQL(), err)
		}
		got := res.Rows[0][0]
		if want.isNull {
			if !got.IsNull() {
				t.Fatalf("%s = %v, oracle says NULL", expr.SQL(), got)
			}
			checked++
			continue
		}
		if got.IsNull() {
			t.Fatalf("%s = NULL, oracle says %g", expr.SQL(), want.f)
		}
		f, convErr := got.AsFloat()
		if convErr != nil {
			t.Fatalf("%s produced non-numeric %v", expr.SQL(), got)
		}
		if f != want.f && !(math.IsNaN(f) && math.IsNaN(want.f)) {
			t.Fatalf("%s = %g, oracle says %g", expr.SQL(), f, want.f)
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d expressions checked; generator too error-prone", checked)
	}
}
