package sqlengine

import (
	"math"
	"strings"
	"testing"

	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
)

func mustTable(t *testing.T, name string, cols []string, rows [][]value.Value) *Table {
	t.Helper()
	tbl, err := NewTable(name, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	cat := NewCatalog()
	cat.Put(mustTable(t, "nums", []string{"n", "grp"}, [][]value.Value{
		{value.Int(1), value.Str("a")},
		{value.Int(2), value.Str("a")},
		{value.Int(3), value.Str("b")},
		{value.Int(4), value.Str("b")},
		{value.Int(5), value.Str("b")},
	}))
	cat.Put(mustTable(t, "names", []string{"grp", "label"}, [][]value.Value{
		{value.Str("a"), value.Str("alpha")},
		{value.Str("b"), value.Str("beta")},
	}))
	return New(cat)
}

func runQuery(t *testing.T, e *Engine, src string, params map[string]value.Value) *Result {
	t.Helper()
	script, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := e.ExecScript(script, params)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func wantErr(t *testing.T, e *Engine, src string, fragment string) {
	t.Helper()
	script, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = e.ExecScript(script, nil)
	if err == nil {
		t.Fatalf("exec %q: expected error containing %q", src, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("exec %q: error %q does not contain %q", src, err, fragment)
	}
}

func intAt(t *testing.T, res *Result, row int, col string) int64 {
	t.Helper()
	i := res.ColIndex(col)
	if i < 0 {
		t.Fatalf("no column %q in %v", col, res.Cols)
	}
	n, err := res.Rows[row][i].AsInt()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func floatAt(t *testing.T, res *Result, row int, col string) float64 {
	t.Helper()
	i := res.ColIndex(col)
	if i < 0 {
		t.Fatalf("no column %q in %v", col, res.Cols)
	}
	f, err := res.Rows[row][i].AsFloat()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestScalarSelectNoFrom(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT 1 + 2 AS three, 'x' AS s;", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if intAt(t, res, 0, "three") != 3 {
		t.Error("1+2 wrong")
	}
}

func TestAliasVisibility(t *testing.T) {
	e := testEngine(t)
	// Figure 2 pattern: later items reference earlier aliases.
	res := runQuery(t, e, `SELECT 10 AS demand, 7 AS capacity,
		CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload;`, nil)
	if intAt(t, res, 0, "overload") != 1 {
		t.Error("alias-visible CASE failed")
	}
}

func TestSelectFromWhere(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums WHERE n > 2;", nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if intAt(t, res, 0, "n") != 3 {
		t.Error("first row wrong")
	}
}

func TestParams(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums WHERE n = @target;",
		map[string]value.Value{"target": value.Int(4)})
	if len(res.Rows) != 1 || intAt(t, res, 0, "n") != 4 {
		t.Errorf("param filter result = %v", res.Rows)
	}
	wantErr(t, e, "SELECT @missing;", "unbound parameter")
}

func TestAggregatesWholeTable(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT COUNT(*) AS c, SUM(n) AS s, AVG(n) AS a,
		MIN(n) AS lo, MAX(n) AS hi, STDDEV(n) AS sd FROM nums;`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if intAt(t, res, 0, "c") != 5 || intAt(t, res, 0, "s") != 15 {
		t.Error("count/sum wrong")
	}
	if floatAt(t, res, 0, "a") != 3 {
		t.Error("avg wrong")
	}
	if intAt(t, res, 0, "lo") != 1 || intAt(t, res, 0, "hi") != 5 {
		t.Error("min/max wrong")
	}
	if math.Abs(floatAt(t, res, 0, "sd")-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g", floatAt(t, res, 0, "sd"))
	}
}

func TestProbabilisticAggregates(t *testing.T) {
	e := testEngine(t)
	// EXPECT ≡ AVG; EXPECT_STDDEV ≡ STDDEV; PROB over 0/1 indicator.
	res := runQuery(t, e, `SELECT EXPECT(n) AS ev, EXPECT_STDDEV(n) AS esd,
		PROB(CASE WHEN n > 3 THEN 1 ELSE 0 END) AS p FROM nums;`, nil)
	if floatAt(t, res, 0, "ev") != 3 {
		t.Error("EXPECT wrong")
	}
	if math.Abs(floatAt(t, res, 0, "esd")-math.Sqrt(2.5)) > 1e-12 {
		t.Error("EXPECT_STDDEV wrong")
	}
	if math.Abs(floatAt(t, res, 0, "p")-0.4) > 1e-12 {
		t.Errorf("PROB = %g", floatAt(t, res, 0, "p"))
	}
}

func TestGroupBy(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT grp, COUNT(*) AS c, SUM(n) AS s
		FROM nums GROUP BY grp ORDER BY grp;`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "a" || intAt(t, res, 0, "c") != 2 || intAt(t, res, 0, "s") != 3 {
		t.Errorf("group a = %v", res.Rows[0])
	}
	if res.Rows[1][0].AsString() != "b" || intAt(t, res, 1, "c") != 3 || intAt(t, res, 1, "s") != 12 {
		t.Errorf("group b = %v", res.Rows[1])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT grp, COUNT(*) AS c FROM nums
		GROUP BY grp HAVING COUNT(*) > 2;`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "b" {
		t.Errorf("having result = %v", res.Rows)
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT COUNT(*) AS c, SUM(n) AS s, AVG(n) AS a FROM nums WHERE n > 100;", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if intAt(t, res, 0, "c") != 0 {
		t.Error("COUNT over empty must be 0")
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Error("SUM/AVG over empty must be NULL")
	}
}

func TestJoin(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT n, label FROM nums JOIN names ON nums.grp = names.grp
		WHERE n >= 3 ORDER BY n;`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsString() != "beta" {
		t.Errorf("join label = %v", res.Rows[0])
	}
}

func TestCrossJoinCount(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT COUNT(*) AS c FROM nums, names;", nil)
	if intAt(t, res, 0, "c") != 10 {
		t.Errorf("cross join count = %d", intAt(t, res, 0, "c"))
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := testEngine(t)
	wantErr(t, e, "SELECT grp FROM nums, names;", "ambiguous")
	// Qualified reference resolves fine.
	res := runQuery(t, e, "SELECT COUNT(*) AS c FROM nums, names WHERE nums.grp = names.grp;", nil)
	if intAt(t, res, 0, "c") != 5 {
		t.Errorf("qualified join count = %d", intAt(t, res, 0, "c"))
	}
}

func TestTableAlias(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT x.n FROM nums AS x WHERE x.n = 1;", nil)
	if len(res.Rows) != 1 {
		t.Errorf("alias rows = %d", len(res.Rows))
	}
	// Original name no longer binds once aliased.
	wantErr(t, e, "SELECT nums.n FROM nums AS x;", "unknown column")
}

func TestOrderByDescAndLimit(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums ORDER BY n DESC LIMIT 2;", nil)
	if len(res.Rows) != 2 || intAt(t, res, 0, "n") != 5 || intAt(t, res, 1, "n") != 4 {
		t.Errorf("order/limit = %v", res.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT grp FROM nums GROUP BY grp ORDER BY SUM(n) DESC;", nil)
	if res.Rows[0][0].AsString() != "b" {
		t.Errorf("order by aggregate = %v", res.Rows)
	}
}

func TestInto(t *testing.T) {
	e := testEngine(t)
	runQuery(t, e, "SELECT n * 2 AS dbl INTO doubled FROM nums;", nil)
	tbl, ok := e.Catalog.Get("doubled")
	if !ok {
		t.Fatal("INTO did not materialize")
	}
	if len(tbl.Rows) != 5 || tbl.Cols[0] != "dbl" {
		t.Errorf("materialized = %v %v", tbl.Cols, tbl.Rows)
	}
	// Re-query the materialized table.
	res := runQuery(t, e, "SELECT SUM(dbl) AS s FROM doubled;", nil)
	if intAt(t, res, 0, "s") != 30 {
		t.Errorf("sum of doubled = %v", res.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT n, CASE WHEN n < 3 THEN 'small' WHEN n < 5 THEN 'mid' ELSE 'big' END AS size
		FROM nums ORDER BY n;`, nil)
	want := []string{"small", "small", "mid", "mid", "big"}
	for i, w := range want {
		if res.Rows[i][1].AsString() != w {
			t.Errorf("row %d size = %v, want %s", i, res.Rows[i][1], w)
		}
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT CASE WHEN FALSE THEN 1 END AS v;", nil)
	if !res.Rows[0][0].IsNull() {
		t.Error("CASE without ELSE should be NULL")
	}
}

func TestBuiltinScalarFunctions(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT ABS(-3) AS a, SQRT(16) AS sq, POWER(2, 10) AS p,
		FLOOR(2.7) AS f, CEILING(2.1) AS c, ROUND(2.5) AS r, SIGN(-9) AS sg,
		LEAST(3, 1, 2) AS lo, GREATEST(3, 1, 2) AS hi, COALESCE(NULL, NULL, 7) AS co,
		EXP(0) AS ex, LN(1) AS l;`, nil)
	checks := map[string]float64{
		"a": 3, "sq": 4, "p": 1024, "f": 2, "c": 3, "r": 3, "sg": -1,
		"lo": 1, "hi": 3, "co": 7, "ex": 1, "l": 0,
	}
	for col, want := range checks {
		if got := floatAt(t, res, 0, col); got != want {
			t.Errorf("%s = %g, want %g", col, got, want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	e := testEngine(t)
	wantErr(t, e, "SELECT SQRT(-1);", "SQRT")
	wantErr(t, e, "SELECT LN(0);", "LN")
	wantErr(t, e, "SELECT NoSuchFn(1);", "unknown function")
	wantErr(t, e, "SELECT ABS(1, 2);", "expects 1 argument")
}

func TestNullSemantics(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT NULL + 1 AS a, NULL = NULL AS b,
		COALESCE(NULL, 2) AS c, NULL IS NULL AS d, 1 IS NOT NULL AS ee;`, nil)
	if !res.Rows[0][0].IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	if !res.Rows[0][1].IsNull() {
		t.Error("NULL = NULL should be NULL")
	}
	if intAt(t, res, 0, "c") != 2 {
		t.Error("COALESCE failed")
	}
	b, _ := res.Rows[0][3].AsBool()
	if !b {
		t.Error("NULL IS NULL should be TRUE")
	}
	b, _ = res.Rows[0][4].AsBool()
	if !b {
		t.Error("1 IS NOT NULL should be TRUE")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `SELECT (FALSE AND NULL) AS a, (TRUE OR NULL) AS b,
		(TRUE AND NULL) AS c, (FALSE OR NULL) AS d, (NULL AND FALSE) AS ee, (NULL OR TRUE) AS f;`, nil)
	av, _ := res.Rows[0][0].AsBool()
	if av {
		t.Error("FALSE AND NULL should be FALSE")
	}
	bv, _ := res.Rows[0][1].AsBool()
	if !bv {
		t.Error("TRUE OR NULL should be TRUE")
	}
	if !res.Rows[0][2].IsNull() || !res.Rows[0][3].IsNull() {
		t.Error("TRUE AND NULL / FALSE OR NULL should be NULL")
	}
	ev := res.Rows[0][4]
	if evb, _ := ev.AsBool(); ev.IsNull() || evb {
		t.Error("NULL AND FALSE should be FALSE")
	}
	fv := res.Rows[0][5]
	if fvb, _ := fv.AsBool(); fv.IsNull() || !fvb {
		t.Error("NULL OR TRUE should be TRUE")
	}
}

func TestBetweenAndIn(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums WHERE n BETWEEN 2 AND 4 ORDER BY n;", nil)
	if len(res.Rows) != 3 {
		t.Errorf("between rows = %d", len(res.Rows))
	}
	res = runQuery(t, e, "SELECT n FROM nums WHERE n NOT IN (1, 3, 5) ORDER BY n;", nil)
	if len(res.Rows) != 2 || intAt(t, res, 0, "n") != 2 {
		t.Errorf("not in rows = %v", res.Rows)
	}
}

func TestNotOperator(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums WHERE NOT n > 2 ORDER BY n;", nil)
	if len(res.Rows) != 2 {
		t.Errorf("NOT rows = %d", len(res.Rows))
	}
}

func TestUnknownTable(t *testing.T) {
	e := testEngine(t)
	wantErr(t, e, "SELECT x FROM missing;", "unknown table")
}

func TestAggregateOutsideGrouping(t *testing.T) {
	e := testEngine(t)
	// Aggregate inside WHERE is not a grouping context.
	wantErr(t, e, "SELECT n FROM nums WHERE SUM(n) > 3;", "aggregation context")
}

func TestNestedAggregateRejected(t *testing.T) {
	e := testEngine(t)
	wantErr(t, e, "SELECT SUM(SUM(n)) FROM nums;", "nested aggregate")
}

func TestCountStarOnlyForCount(t *testing.T) {
	e := testEngine(t)
	wantErr(t, e, "SELECT SUM(*) FROM nums;", "COUNT(*)")
}

func TestResolverTakesPriority(t *testing.T) {
	e := testEngine(t)
	e.Resolver = FuncResolverFunc(func(name string, args []value.Value) (value.Value, bool, error) {
		if name == "Custom" {
			return value.Int(99), true, nil
		}
		return value.Null, false, nil
	})
	res := runQuery(t, e, "SELECT Custom() AS c, ABS(-1) AS a;", nil)
	if intAt(t, res, 0, "c") != 99 {
		t.Error("resolver not consulted")
	}
	if floatAt(t, res, 0, "a") != 1 {
		t.Error("builtin fallback broken")
	}
}

func TestMixedAggregateAndScalarExpression(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT SUM(n) * 2 + COUNT(*) AS v FROM nums;", nil)
	if intAt(t, res, 0, "v") != 35 {
		t.Errorf("mixed agg expr = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n % 2 AS parity, COUNT(*) AS c FROM nums GROUP BY n % 2 ORDER BY parity;", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if intAt(t, res, 0, "parity") != 0 || intAt(t, res, 0, "c") != 2 {
		t.Errorf("parity 0 = %v", res.Rows[0])
	}
	if intAt(t, res, 1, "parity") != 1 || intAt(t, res, 1, "c") != 3 {
		t.Errorf("parity 1 = %v", res.Rows[1])
	}
}

func TestResultColumnHelpers(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, "SELECT n FROM nums ORDER BY n;", nil)
	col, err := res.Column("n")
	if err != nil || len(col) != 5 {
		t.Fatalf("Column = %v, %v", col, err)
	}
	if _, err := res.Column("zzz"); err == nil {
		t.Error("missing column should error")
	}
	if res.ColIndex("zzz") != -1 {
		t.Error("ColIndex for missing should be -1")
	}
}

func TestExecScriptSkipsMetadataStatements(t *testing.T) {
	e := testEngine(t)
	res := runQuery(t, e, `DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;
SELECT 42 AS v;
GRAPH OVER @p EXPECT v;`, nil)
	if intAt(t, res, 0, "v") != 42 {
		t.Error("script execution wrong")
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	tbl := &Table{Name: "t", Cols: []string{"a"}}
	c.Put(tbl)
	if _, ok := c.Get("t"); !ok {
		t.Error("Get after Put failed")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "t" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("t")
	if _, ok := c.Get("t"); ok {
		t.Error("Drop failed")
	}
	c.Drop("t") // no-op
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", []string{"a"}, nil); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewTable("t", nil, nil); err == nil {
		t.Error("no columns should error")
	}
	if _, err := NewTable("t", []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate columns should error")
	}
	if _, err := NewTable("t", []string{"a"}, [][]value.Value{{value.Int(1), value.Int(2)}}); err == nil {
		t.Error("row width mismatch should error")
	}
	tbl, err := NewTable("t", []string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ColIndex("b") != 1 || tbl.ColIndex("z") != -1 {
		t.Error("ColIndex wrong")
	}
	if err := tbl.Append([]value.Value{value.Int(1)}); err == nil {
		t.Error("short append should error")
	}
	if err := tbl.Append([]value.Value{value.Int(1), value.Int(2)}); err != nil {
		t.Error(err)
	}
}
