package vg

import (
	"fmt"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/value"
)

// RegisterBuiltins adds the standard distribution VG-Functions to r. These
// are the "specialized tools like R" stand-ins of the paper's workflow step
// (1): analysts would normally export fitted models; here the primitives are
// available directly in scenario SQL.
//
//	Gaussian(mean, stddev)        normal variate
//	LogNormal(mu, sigma)          log-normal variate
//	Poisson(mean)                 Poisson count
//	Uniform(lo, hi)               uniform variate in [lo, hi)
//	Exponential(rate)             exponential variate
//	Bernoulli(p)                  0/1 indicator
//	Binomial(n, p)                number of successes
//	Weibull(shape, scale)         Weibull variate
//	Gamma(shape, scale)           gamma variate
func RegisterBuiltins(r *Registry) error {
	builtins := []Function{
		NewFunc("Gaussian", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			mean, stddev, err := twoFloats("Gaussian", args)
			if err != nil {
				return value.Null, err
			}
			if stddev < 0 {
				return value.Null, fmt.Errorf("vg: Gaussian stddev must be non-negative, got %g", stddev)
			}
			return value.Float(rng.New(seed).Normal(mean, stddev)), nil
		}),
		NewFunc("LogNormal", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			mu, sigma, err := twoFloats("LogNormal", args)
			if err != nil {
				return value.Null, err
			}
			if sigma < 0 {
				return value.Null, fmt.Errorf("vg: LogNormal sigma must be non-negative, got %g", sigma)
			}
			return value.Float(rng.New(seed).LogNormal(mu, sigma)), nil
		}),
		NewFunc("Poisson", 1, func(seed uint64, args []value.Value) (value.Value, error) {
			mean, err := oneFloat("Poisson", args)
			if err != nil {
				return value.Null, err
			}
			if mean < 0 {
				return value.Null, fmt.Errorf("vg: Poisson mean must be non-negative, got %g", mean)
			}
			return value.Int(rng.New(seed).Poisson(mean)), nil
		}),
		NewFunc("Uniform", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			lo, hi, err := twoFloats("Uniform", args)
			if err != nil {
				return value.Null, err
			}
			if hi < lo {
				return value.Null, fmt.Errorf("vg: Uniform needs lo <= hi, got [%g, %g)", lo, hi)
			}
			return value.Float(rng.New(seed).Uniform(lo, hi)), nil
		}),
		NewFunc("Exponential", 1, func(seed uint64, args []value.Value) (value.Value, error) {
			rate, err := oneFloat("Exponential", args)
			if err != nil {
				return value.Null, err
			}
			if rate <= 0 {
				return value.Null, fmt.Errorf("vg: Exponential rate must be positive, got %g", rate)
			}
			return value.Float(rng.New(seed).Exponential(rate)), nil
		}),
		NewFunc("Bernoulli", 1, func(seed uint64, args []value.Value) (value.Value, error) {
			p, err := oneFloat("Bernoulli", args)
			if err != nil {
				return value.Null, err
			}
			if rng.New(seed).Bernoulli(p) {
				return value.Int(1), nil
			}
			return value.Int(0), nil
		}),
		NewFunc("Binomial", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			nf, p, err := twoFloats("Binomial", args)
			if err != nil {
				return value.Null, err
			}
			n := int(nf)
			if n < 0 || p < 0 || p > 1 {
				return value.Null, fmt.Errorf("vg: Binomial needs n >= 0 and p in [0,1], got n=%d p=%g", n, p)
			}
			return value.Int(rng.New(seed).Binomial(n, p)), nil
		}),
		NewFunc("Weibull", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			shape, scale, err := twoFloats("Weibull", args)
			if err != nil {
				return value.Null, err
			}
			if shape <= 0 || scale <= 0 {
				return value.Null, fmt.Errorf("vg: Weibull needs positive shape and scale, got %g, %g", shape, scale)
			}
			return value.Float(rng.New(seed).Weibull(shape, scale)), nil
		}),
		NewFunc("Gamma", 2, func(seed uint64, args []value.Value) (value.Value, error) {
			shape, scale, err := twoFloats("Gamma", args)
			if err != nil {
				return value.Null, err
			}
			if shape <= 0 || scale <= 0 {
				return value.Null, fmt.Errorf("vg: Gamma needs positive shape and scale, got %g, %g", shape, scale)
			}
			return value.Float(rng.New(seed).Gamma(shape, scale)), nil
		}),
	}
	for _, f := range builtins {
		if err := r.Register(f); err != nil {
			return err
		}
	}
	return nil
}

func oneFloat(name string, args []value.Value) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("vg: %s expects 1 argument, got %d", name, len(args))
	}
	f, err := args[0].AsFloat()
	if err != nil {
		return 0, fmt.Errorf("vg: %s argument: %v", name, err)
	}
	return f, nil
}

func twoFloats(name string, args []value.Value) (float64, float64, error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("vg: %s expects 2 arguments, got %d", name, len(args))
	}
	a, err := args[0].AsFloat()
	if err != nil {
		return 0, 0, fmt.Errorf("vg: %s argument 1: %v", name, err)
	}
	b, err := args[1].AsFloat()
	if err != nil {
		return 0, 0, fmt.Errorf("vg: %s argument 2: %v", name, err)
	}
	return a, b, nil
}
