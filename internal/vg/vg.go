// Package vg implements the VG-Function (variable-generation function)
// framework, the black-box stochastic model abstraction Fuzzy Prophet
// inherits from MCDB and PIP.
//
// A VG-Function is an arbitrary user-supplied stochastic function. The one
// contract the fingerprinting technique imposes is determinism in (seed,
// arguments): invoking the function twice with the same PRNG seed and the
// same arguments must produce identical output. The system exploits this to
// compare function behaviour across parameter values under a fixed seed
// sequence (the paper's fingerprint), so any violation silently breaks
// reuse; Registry.CheckDeterminism exists to catch such models early.
//
// The package also counts invocations. The paper's headline benefit is
// avoided VG-Function work, so the experiment harness reads these counters
// to report "VG invocations saved".
package vg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fuzzyprophet/internal/value"
)

// Function is a scalar VG-Function.
type Function interface {
	// Name is the identifier scenarios use to call the function.
	Name() string
	// Arity is the required argument count.
	Arity() int
	// Generate returns the function's stochastic output. It must be
	// deterministic in (seed, args) and safe for concurrent use.
	Generate(seed uint64, args []value.Value) (value.Value, error)
}

// TableFunction is a table-generating VG-Function (the form the paper's
// DemandModel and CapacityModel take in TSQL). The scenario engine invokes
// it once per world and exposes the rows through the FROM clause.
type TableFunction interface {
	// Name is the identifier scenarios use in FROM clauses.
	Name() string
	// Arity is the required argument count.
	Arity() int
	// Columns names the generated columns.
	Columns() []string
	// GenerateTable returns the generated rows. It must be deterministic in
	// (seed, args) and safe for concurrent use.
	GenerateTable(seed uint64, args []value.Value) ([][]value.Value, error)
}

// GenerateFunc adapts a plain function to the Function interface.
type GenerateFunc func(seed uint64, args []value.Value) (value.Value, error)

type funcAdapter struct {
	name  string
	arity int
	fn    GenerateFunc
}

func (f *funcAdapter) Name() string { return f.name }
func (f *funcAdapter) Arity() int   { return f.arity }
func (f *funcAdapter) Generate(seed uint64, args []value.Value) (value.Value, error) {
	return f.fn(seed, args)
}

// NewFunc wraps fn as a named scalar VG-Function.
func NewFunc(name string, arity int, fn GenerateFunc) Function {
	return &funcAdapter{name: name, arity: arity, fn: fn}
}

// Registry is a thread-safe catalog of VG-Functions plus invocation
// counters.
type Registry struct {
	mu     sync.RWMutex
	scalar map[string]Function
	table  map[string]TableFunction
	counts map[string]*atomic.Int64
	total  atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		scalar: make(map[string]Function),
		table:  make(map[string]TableFunction),
		counts: make(map[string]*atomic.Int64),
	}
}

// Register adds a scalar VG-Function. It returns an error if the name is
// already taken (by either flavor).
func (r *Registry) Register(f Function) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := f.Name()
	if _, ok := r.scalar[name]; ok {
		return fmt.Errorf("vg: function %q already registered", name)
	}
	if _, ok := r.table[name]; ok {
		return fmt.Errorf("vg: function %q already registered as a table function", name)
	}
	r.scalar[name] = f
	r.counts[name] = &atomic.Int64{}
	return nil
}

// RegisterTable adds a table VG-Function. It returns an error if the name is
// already taken.
func (r *Registry) RegisterTable(f TableFunction) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := f.Name()
	if _, ok := r.table[name]; ok {
		return fmt.Errorf("vg: table function %q already registered", name)
	}
	if _, ok := r.scalar[name]; ok {
		return fmt.Errorf("vg: table function %q already registered as a scalar function", name)
	}
	r.table[name] = f
	r.counts[name] = &atomic.Int64{}
	return nil
}

// Lookup returns the named scalar function.
func (r *Registry) Lookup(name string) (Function, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.scalar[name]
	return f, ok
}

// LookupTable returns the named table function.
func (r *Registry) LookupTable(name string) (TableFunction, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.table[name]
	return f, ok
}

// Names returns all registered names (both flavors), sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scalar)+len(r.table))
	for n := range r.scalar {
		out = append(out, n)
	}
	for n := range r.table {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Invoke calls the named scalar function, validating arity and counting the
// invocation.
func (r *Registry) Invoke(name string, seed uint64, args []value.Value) (value.Value, error) {
	r.mu.RLock()
	f, ok := r.scalar[name]
	c := r.counts[name]
	r.mu.RUnlock()
	if !ok {
		return value.Null, fmt.Errorf("vg: unknown function %q", name)
	}
	if f.Arity() >= 0 && len(args) != f.Arity() {
		return value.Null, fmt.Errorf("vg: function %q expects %d arguments, got %d", name, f.Arity(), len(args))
	}
	c.Add(1)
	r.total.Add(1)
	return f.Generate(seed, args)
}

// InvokeTable calls the named table function, validating arity and counting
// the invocation.
func (r *Registry) InvokeTable(name string, seed uint64, args []value.Value) ([][]value.Value, error) {
	r.mu.RLock()
	f, ok := r.table[name]
	c := r.counts[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vg: unknown table function %q", name)
	}
	if f.Arity() >= 0 && len(args) != f.Arity() {
		return nil, fmt.Errorf("vg: table function %q expects %d arguments, got %d", name, f.Arity(), len(args))
	}
	c.Add(1)
	r.total.Add(1)
	return f.GenerateTable(seed, args)
}

// Count returns the number of invocations of the named function.
func (r *Registry) Count(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counts[name]; ok {
		return c.Load()
	}
	return 0
}

// TotalInvocations returns the total invocation count across all functions.
func (r *Registry) TotalInvocations() int64 { return r.total.Load() }

// ResetCounters zeroes all invocation counters (used between experiment
// runs).
func (r *Registry) ResetCounters() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.Store(0)
	}
	r.total.Store(0)
}

// CheckDeterminism invokes the named function twice with the same seed and
// arguments and returns an error when the outputs differ — the contract
// violation that silently poisons fingerprint reuse.
func (r *Registry) CheckDeterminism(name string, seed uint64, args []value.Value) error {
	if _, ok := r.Lookup(name); ok {
		a, err := r.Invoke(name, seed, args)
		if err != nil {
			return err
		}
		b, err := r.Invoke(name, seed, args)
		if err != nil {
			return err
		}
		if !a.Equal(b) {
			return fmt.Errorf("vg: function %q is not deterministic in its seed: %v vs %v", name, a, b)
		}
		return nil
	}
	if _, ok := r.LookupTable(name); ok {
		a, err := r.InvokeTable(name, seed, args)
		if err != nil {
			return err
		}
		b, err := r.InvokeTable(name, seed, args)
		if err != nil {
			return err
		}
		if len(a) != len(b) {
			return fmt.Errorf("vg: table function %q is not deterministic in its seed: %d vs %d rows", name, len(a), len(b))
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return fmt.Errorf("vg: table function %q row %d width differs between runs", name, i)
			}
			for j := range a[i] {
				if !a[i][j].Equal(b[i][j]) {
					return fmt.Errorf("vg: table function %q row %d col %d differs between runs: %v vs %v",
						name, i, j, a[i][j], b[i][j])
				}
			}
		}
		return nil
	}
	return fmt.Errorf("vg: unknown function %q", name)
}
