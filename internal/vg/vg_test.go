package vg

import (
	"math"
	"strings"
	"sync"
	"testing"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/value"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if err := RegisterBuiltins(r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	f := NewFunc("Const7", 0, func(seed uint64, args []value.Value) (value.Value, error) {
		return value.Int(7), nil
	})
	if err := r.Register(f); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("Const7")
	if !ok || got.Name() != "Const7" || got.Arity() != 0 {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("missing function should not resolve")
	}
	if err := r.Register(f); err == nil {
		t.Error("duplicate registration should error")
	}
}

func TestRegisterCrossFlavorConflict(t *testing.T) {
	r := NewRegistry()
	scalar := NewFunc("X", 0, func(uint64, []value.Value) (value.Value, error) { return value.Int(1), nil })
	table := &testTableFunc{name: "X"}
	if err := r.Register(scalar); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterTable(table); err == nil {
		t.Error("table function colliding with scalar name should error")
	}
	r2 := NewRegistry()
	if err := r2.RegisterTable(table); err != nil {
		t.Fatal(err)
	}
	if err := r2.Register(scalar); err == nil {
		t.Error("scalar function colliding with table name should error")
	}
	if err := r2.RegisterTable(table); err == nil {
		t.Error("duplicate table registration should error")
	}
}

type testTableFunc struct {
	name string
}

func (f *testTableFunc) Name() string      { return f.name }
func (f *testTableFunc) Arity() int        { return 1 }
func (f *testTableFunc) Columns() []string { return []string{"week", "v"} }
func (f *testTableFunc) GenerateTable(seed uint64, args []value.Value) ([][]value.Value, error) {
	n, err := args[0].AsInt()
	if err != nil {
		return nil, err
	}
	src := rng.New(seed)
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{value.Int(int64(i)), value.Float(src.Float64())}
	}
	return rows, nil
}

func TestInvokeCountsAndArity(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.Invoke("Gaussian", 1, []value.Value{value.Int(0)}); err == nil {
		t.Error("wrong arity should error")
	}
	v, err := r.Invoke("Gaussian", 1, []value.Value{value.Float(10), value.Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsFloat()
	if f != 10 {
		t.Errorf("Gaussian(10, 0) = %g, want exactly 10", f)
	}
	if r.Count("Gaussian") != 2 { // failed arity check still counts? No: count increments after validation
		// Count is incremented only on successful dispatch; the arity error
		// happens first, so we expect 1.
		if r.Count("Gaussian") != 1 {
			t.Errorf("count = %d", r.Count("Gaussian"))
		}
	}
	if r.TotalInvocations() == 0 {
		t.Error("total invocations should be counted")
	}
	r.ResetCounters()
	if r.TotalInvocations() != 0 || r.Count("Gaussian") != 0 {
		t.Error("reset did not zero counters")
	}
	if _, err := r.Invoke("nope", 1, nil); err == nil {
		t.Error("unknown function should error")
	}
}

func TestInvokeTable(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterTable(&testTableFunc{name: "Tbl"}); err != nil {
		t.Fatal(err)
	}
	rows, err := r.InvokeTable("Tbl", 42, []value.Value{value.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if r.Count("Tbl") != 1 {
		t.Errorf("table count = %d", r.Count("Tbl"))
	}
	if _, err := r.InvokeTable("Tbl", 42, nil); err == nil {
		t.Error("wrong table arity should error")
	}
	if _, err := r.InvokeTable("missing", 1, nil); err == nil {
		t.Error("unknown table function should error")
	}
	tf, ok := r.LookupTable("Tbl")
	if !ok || tf.Columns()[0] != "week" {
		t.Errorf("LookupTable = %v, %v", tf, ok)
	}
}

func TestNames(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.RegisterTable(&testTableFunc{name: "ZTable"}); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) < 9 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if names[len(names)-1] != "ZTable" {
		t.Errorf("ZTable missing or not last: %v", names)
	}
}

func TestBuiltinDeterminism(t *testing.T) {
	r := newTestRegistry(t)
	args := map[string][]value.Value{
		"Gaussian":    {value.Float(5), value.Float(2)},
		"LogNormal":   {value.Float(0), value.Float(0.5)},
		"Poisson":     {value.Float(4)},
		"Uniform":     {value.Float(0), value.Float(10)},
		"Exponential": {value.Float(1)},
		"Bernoulli":   {value.Float(0.5)},
		"Binomial":    {value.Int(20), value.Float(0.3)},
		"Weibull":     {value.Float(1.5), value.Float(2)},
		"Gamma":       {value.Float(2), value.Float(3)},
	}
	for name, a := range args {
		if err := r.CheckDeterminism(name, 12345, a); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCheckDeterminismCatchesViolation(t *testing.T) {
	r := NewRegistry()
	calls := 0
	bad := NewFunc("Bad", 0, func(seed uint64, args []value.Value) (value.Value, error) {
		calls++
		return value.Int(int64(calls)), nil // ignores the seed: nondeterministic
	})
	if err := r.Register(bad); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckDeterminism("Bad", 1, nil); err == nil {
		t.Error("nondeterministic function should be detected")
	}
	if err := r.CheckDeterminism("missing", 1, nil); err == nil {
		t.Error("unknown name should error")
	}
}

func TestCheckDeterminismTable(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterTable(&testTableFunc{name: "Tbl"}); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckDeterminism("Tbl", 7, []value.Value{value.Int(4)}); err != nil {
		t.Errorf("deterministic table flagged: %v", err)
	}
}

func TestBuiltinValidation(t *testing.T) {
	r := newTestRegistry(t)
	cases := []struct {
		name string
		args []value.Value
	}{
		{"Gaussian", []value.Value{value.Float(0), value.Float(-1)}},
		{"LogNormal", []value.Value{value.Float(0), value.Float(-1)}},
		{"Poisson", []value.Value{value.Float(-2)}},
		{"Uniform", []value.Value{value.Float(5), value.Float(1)}},
		{"Exponential", []value.Value{value.Float(0)}},
		{"Binomial", []value.Value{value.Int(-1), value.Float(0.5)}},
		{"Binomial", []value.Value{value.Int(5), value.Float(1.5)}},
		{"Weibull", []value.Value{value.Float(0), value.Float(1)}},
		{"Gamma", []value.Value{value.Float(1), value.Float(0)}},
		{"Gaussian", []value.Value{value.Str("x"), value.Float(1)}},
		{"Poisson", []value.Value{value.Str("x")}},
	}
	for _, c := range cases {
		if _, err := r.Invoke(c.name, 1, c.args); err == nil {
			t.Errorf("%s(%v) should error", c.name, c.args)
		}
	}
}

func TestBuiltinDistributionShapes(t *testing.T) {
	r := newTestRegistry(t)
	seq := rng.NewSeedSequence(1, "test")
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v, err := r.Invoke("Poisson", seq.At(i), []value.Value{value.Float(6)})
		if err != nil {
			t.Fatal(err)
		}
		f, _ := v.AsFloat()
		sum += f
	}
	if mean := sum / n; math.Abs(mean-6) > 0.1 {
		t.Errorf("Poisson(6) empirical mean = %g", mean)
	}
	var ones int
	for i := 0; i < n; i++ {
		v, _ := r.Invoke("Bernoulli", seq.At(i), []value.Value{value.Float(0.2)})
		iv, _ := v.AsInt()
		if iv == 1 {
			ones++
		}
	}
	if p := float64(ones) / n; math.Abs(p-0.2) > 0.02 {
		t.Errorf("Bernoulli(0.2) rate = %g", p)
	}
}

func TestConcurrentInvocation(t *testing.T) {
	r := newTestRegistry(t)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := r.Invoke("Gaussian", uint64(w*perWorker+i), []value.Value{value.Float(0), value.Float(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Count("Gaussian"); got != workers*perWorker {
		t.Errorf("concurrent count = %d, want %d", got, workers*perWorker)
	}
}

func TestErrorsMentionFunctionName(t *testing.T) {
	r := newTestRegistry(t)
	_, err := r.Invoke("Gamma", 1, []value.Value{value.Float(-1), value.Float(1)})
	if err == nil || !strings.Contains(err.Error(), "Gamma") {
		t.Errorf("error should name the function: %v", err)
	}
}
