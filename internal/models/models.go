// Package models implements the business-scenario VG-Functions of the
// paper's demonstration (§3.1, "Risk vs Cost of Ownership"): a demand
// forecast and a capacity simulation for a Windows Azure-style datacenter,
// plus additional models used by the extra examples.
//
// The paper notes its own constants are "arbitrarily chosen for
// intellectual property reasons"; ours are calibrated so the demo
// reproduces Figure 3's shape — overload risk is negligible early, rises as
// demand approaches capacity, and drops when purchased hardware arrives.
//
// Determinism discipline: every stochastic draw is keyed by
// rng.Derive(worldSeed, streamLabel, index) where the label and index never
// depend on the *parameter values* — only on structural positions (week
// number, failure class, purchase ordinal). This is what makes the models
// fingerprint-friendly: two parameterizations that agree on whether an
// event has happened by week w produce bitwise-identical outputs at week w,
// which the fingerprint engine detects as an identity mapping.
package models

import (
	"fmt"
	"math"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// Weeks is the number of simulated weeks (the scenario's year, weeks
// 0..52 inclusive like Figure 2's RANGE 0 TO 52).
const Weeks = 53

// DemandConfig calibrates the demand forecast.
type DemandConfig struct {
	// Base is the expected demand (cores) at week 0.
	Base float64
	// Growth is the expected demand increase per week.
	Growth float64
	// Sigma is the weekly demand noise standard deviation.
	Sigma float64
	// FeatureBoost is the additional expected demand once the released
	// feature has fully ramped.
	FeatureBoost float64
	// FeatureSigma is the noise of the feature-driven demand component.
	FeatureSigma float64
	// FeatureRampWeeks is the number of weeks over which the feature's
	// demand ramps from 0 to FeatureBoost.
	FeatureRampWeeks int
}

// DefaultDemandConfig returns the calibration used by the demo scenario.
func DefaultDemandConfig() DemandConfig {
	return DemandConfig{
		Base:             40000,
		Growth:           300,
		Sigma:            1500,
		FeatureBoost:     4000,
		FeatureSigma:     1000,
		FeatureRampWeeks: 8,
	}
}

// DemandModel is the paper's demand forecast: "a daily demand forecast
// expressed as a simple gaussian. A second gaussian is added to the first
// after the feature release date." We simulate at weekly granularity.
//
// Scenario signature: DemandModel(@current, @feature) → cores demanded.
type DemandModel struct {
	cfg DemandConfig
}

// NewDemandModel returns a demand model with the given calibration.
func NewDemandModel(cfg DemandConfig) *DemandModel { return &DemandModel{cfg: cfg} }

// Name implements vg.Function.
func (m *DemandModel) Name() string { return "DemandModel" }

// Arity implements vg.Function.
func (m *DemandModel) Arity() int { return 2 }

// At returns the demand at week for the given feature release week and
// world seed. It is the direct-call form used by the Markov analyzer and
// the benches.
func (m *DemandModel) At(seed uint64, week, feature int) float64 {
	base := m.cfg.Base + m.cfg.Growth*float64(week) +
		rng.Derive(seed, "demand.base", uint64(week)).Normal(0, m.cfg.Sigma)
	if week < feature {
		return base
	}
	ramp := 1.0
	if m.cfg.FeatureRampWeeks > 0 {
		ramp = float64(week-feature+1) / float64(m.cfg.FeatureRampWeeks)
		if ramp > 1 {
			ramp = 1
		}
	}
	// The feature component's noise is keyed by absolute week, not by
	// week-since-release: once two release dates have both fully ramped,
	// their demands coincide exactly — an identity mapping fingerprints
	// recover automatically.
	bump := ramp * (m.cfg.FeatureBoost +
		rng.Derive(seed, "demand.feature", uint64(week)).Normal(0, m.cfg.FeatureSigma))
	return base + bump
}

// Generate implements vg.Function.
func (m *DemandModel) Generate(seed uint64, args []value.Value) (value.Value, error) {
	week, err := weekArg("DemandModel", args, 0)
	if err != nil {
		return value.Null, err
	}
	feature, err := args[1].AsInt()
	if err != nil {
		return value.Null, fmt.Errorf("models: DemandModel feature argument: %v", err)
	}
	return value.Float(m.At(seed, week, int(feature))), nil
}

// FailureClass calibrates one class of hardware failure.
type FailureClass struct {
	// Name identifies the class (diagnostics only).
	Name string
	// WeeklyRate is the Poisson mean of failures per week.
	WeeklyRate float64
	// CoresPerFailure is the capacity lost per failure event.
	CoresPerFailure float64
	// RepairWeeks is how long a failed unit stays out of service.
	RepairWeeks int
	// RepairFraction is the fraction of failed cores that return to
	// service after RepairWeeks (the rest are permanently lost).
	RepairFraction float64
}

// CapacityConfig calibrates the capacity simulation.
type CapacityConfig struct {
	// Initial is the fleet capacity (cores) at week 0.
	Initial float64
	// BatchCores is the capacity added when one hardware purchase deploys.
	BatchCores float64
	// LeadTimeMin is the minimum purchase-to-deployment lag in weeks.
	LeadTimeMin int
	// LeadTimeMean is the Poisson mean of the additional stochastic lag.
	LeadTimeMean float64
	// AgingRate is the deterministic weekly capacity loss to fleet aging.
	AgingRate float64
	// Failures is the set of failure classes.
	Failures []FailureClass
}

// DefaultCapacityConfig returns the calibration used by the demo scenario.
func DefaultCapacityConfig() CapacityConfig {
	return CapacityConfig{
		Initial:      50000,
		BatchCores:   12000,
		LeadTimeMin:  2,
		LeadTimeMean: 2,
		AgingRate:    20,
		Failures: []FailureClass{
			{Name: "disk", WeeklyRate: 3.0, CoresPerFailure: 16, RepairWeeks: 1, RepairFraction: 0.9},
			{Name: "psu", WeeklyRate: 1.5, CoresPerFailure: 32, RepairWeeks: 2, RepairFraction: 0.85},
			{Name: "network", WeeklyRate: 0.8, CoresPerFailure: 160, RepairWeeks: 2, RepairFraction: 0.9},
			{Name: "chassis", WeeklyRate: 0.4, CoresPerFailure: 80, RepairWeeks: 3, RepairFraction: 0.75},
		},
	}
}

// CapacityModel is the paper's capacity simulation: "an aggregate of many
// different individual models, each expressing different classes of
// hardware failures, as well as expected time from new hardware purchase to
// deployment. The model accepts a set of hardware purchase dates,
// constructs (stochastically) a series of events that modify the number of
// cores available during a given week, and tracks the sum of all changes
// over the course of the entire year."
//
// Scenario signature: CapacityModel(@current, @purchase1, @purchase2) →
// cores available.
//
// The purchase-to-deployment lag is stochastic (LeadTimeMin + Poisson),
// keyed by purchase ordinal — the paper's own example of a discontinuity at
// a random point in time ("the nondeterministic date when new hardware
// comes online"). Failure draws are keyed by (week, class) independent of
// the purchase dates, so weeks unaffected by a purchase shift are bitwise
// identical across parameterizations.
type CapacityModel struct {
	cfg CapacityConfig
}

// NewCapacityModel returns a capacity model with the given calibration.
func NewCapacityModel(cfg CapacityConfig) *CapacityModel { return &CapacityModel{cfg: cfg} }

// Name implements vg.Function.
func (m *CapacityModel) Name() string { return "CapacityModel" }

// Arity implements vg.Function.
func (m *CapacityModel) Arity() int { return 3 }

// ArrivalWeek returns the stochastic deployment week of the purchase placed
// at purchaseWeek (ordinal distinguishes the first and second purchase).
func (m *CapacityModel) ArrivalWeek(seed uint64, purchaseWeek, ordinal int) int {
	lag := m.cfg.LeadTimeMin +
		int(rng.Derive(seed, "capacity.lead", uint64(ordinal)).Poisson(m.cfg.LeadTimeMean))
	return purchaseWeek + lag
}

// Series simulates the full year and returns the per-week capacity,
// weeks 0..Weeks-1. This is the chain the Markov analyzer inspects.
func (m *CapacityModel) Series(seed uint64, purchase1, purchase2 int) []float64 {
	arr1 := m.ArrivalWeek(seed, purchase1, 0)
	arr2 := m.ArrivalWeek(seed, purchase2, 1)

	// pendingRepair[w] is capacity scheduled to return at week w.
	pendingRepair := make([]float64, Weeks+8)
	caps := make([]float64, Weeks)
	cap := m.cfg.Initial
	for w := 0; w < Weeks; w++ {
		if w > 0 {
			cap -= m.cfg.AgingRate
			for ci, fc := range m.cfg.Failures {
				src := rng.Derive(seed, "capacity.fail."+fc.Name, uint64(w)^uint64(ci)<<32)
				failures := float64(src.Poisson(fc.WeeklyRate))
				lost := failures * fc.CoresPerFailure
				cap -= lost
				back := w + fc.RepairWeeks
				if back < len(pendingRepair) {
					pendingRepair[back] += lost * fc.RepairFraction
				}
			}
			cap += pendingRepair[w]
			if w == arr1 {
				cap += m.cfg.BatchCores
			}
			if w == arr2 {
				cap += m.cfg.BatchCores
			}
			// A purchase can arrive in the same week as another; both are
			// handled above. Arrivals past week 52 simply never land.
		}
		caps[w] = cap
	}
	return caps
}

// At returns the capacity at week under the given purchase schedule.
func (m *CapacityModel) At(seed uint64, week, purchase1, purchase2 int) float64 {
	return m.Series(seed, purchase1, purchase2)[week]
}

// Generate implements vg.Function.
func (m *CapacityModel) Generate(seed uint64, args []value.Value) (value.Value, error) {
	week, err := weekArg("CapacityModel", args, 0)
	if err != nil {
		return value.Null, err
	}
	p1, err := args[1].AsInt()
	if err != nil {
		return value.Null, fmt.Errorf("models: CapacityModel purchase1 argument: %v", err)
	}
	p2, err := args[2].AsInt()
	if err != nil {
		return value.Null, fmt.Errorf("models: CapacityModel purchase2 argument: %v", err)
	}
	return value.Float(m.At(seed, week, int(p1), int(p2))), nil
}

// RevenueConfig calibrates the pricing model used by the revenue example.
type RevenueConfig struct {
	// MarketSize is the expected unit demand at the reference price.
	MarketSize float64
	// ReferencePrice is the price at which demand equals MarketSize.
	ReferencePrice float64
	// Elasticity is the (positive) price elasticity of demand.
	Elasticity float64
	// Sigma is the multiplicative demand noise (lognormal sigma).
	Sigma float64
	// GrowthPerWeek is the weekly market growth factor.
	GrowthPerWeek float64
}

// DefaultRevenueConfig returns the calibration used by the pricing example.
func DefaultRevenueConfig() RevenueConfig {
	return RevenueConfig{
		MarketSize:     100000,
		ReferencePrice: 10,
		Elasticity:     1.6,
		Sigma:          0.08,
		GrowthPerWeek:  0.004,
	}
}

// RevenueModel is a constant-elasticity pricing model for the pricing
// what-if example: weekly unit demand scales as (p/p₀)^-ε with lognormal
// noise; revenue = price × units.
//
// Scenario signature: RevenueModel(@current, @price) → weekly revenue.
// UnitsModel(@current, @price) → weekly unit demand.
type RevenueModel struct {
	cfg RevenueConfig
}

// NewRevenueModel returns a revenue model with the given calibration.
func NewRevenueModel(cfg RevenueConfig) *RevenueModel { return &RevenueModel{cfg: cfg} }

// Units returns the stochastic unit demand at week for the given price.
// The noise stream is keyed by week only, so demands at different prices
// are exact deterministic transforms of each other — affine in log space
// and, at fixed price ratio, exactly proportional: the affine-mapping
// showcase.
func (m *RevenueModel) Units(seed uint64, week int, price float64) float64 {
	growth := 1.0
	for i := 0; i < week; i++ {
		growth *= 1 + m.cfg.GrowthPerWeek
	}
	noise := rng.Derive(seed, "revenue.units", uint64(week)).LogNormal(0, m.cfg.Sigma)
	rel := price / m.cfg.ReferencePrice
	elastic := 1.0
	if rel > 0 {
		elastic = math.Pow(rel, -m.cfg.Elasticity)
	}
	return m.cfg.MarketSize * growth * elastic * noise
}

// Revenue returns price × units.
func (m *RevenueModel) Revenue(seed uint64, week int, price float64) float64 {
	return price * m.Units(seed, week, price)
}

// Name implements vg.Function.
func (m *RevenueModel) Name() string { return "RevenueModel" }

// Arity implements vg.Function.
func (m *RevenueModel) Arity() int { return 2 }

// Generate implements vg.Function.
func (m *RevenueModel) Generate(seed uint64, args []value.Value) (value.Value, error) {
	week, err := weekArg("RevenueModel", args, 0)
	if err != nil {
		return value.Null, err
	}
	price, err := args[1].AsFloat()
	if err != nil {
		return value.Null, fmt.Errorf("models: RevenueModel price argument: %v", err)
	}
	if price <= 0 {
		return value.Null, fmt.Errorf("models: RevenueModel price must be positive, got %g", price)
	}
	return value.Float(m.Revenue(seed, week, price)), nil
}

// unitsFunc adapts RevenueModel.Units as its own VG-Function.
type unitsFunc struct {
	m *RevenueModel
}

func (u *unitsFunc) Name() string { return "UnitsModel" }
func (u *unitsFunc) Arity() int   { return 2 }
func (u *unitsFunc) Generate(seed uint64, args []value.Value) (value.Value, error) {
	week, err := weekArg("UnitsModel", args, 0)
	if err != nil {
		return value.Null, err
	}
	price, err := args[1].AsFloat()
	if err != nil {
		return value.Null, fmt.Errorf("models: UnitsModel price argument: %v", err)
	}
	if price <= 0 {
		return value.Null, fmt.Errorf("models: UnitsModel price must be positive, got %g", price)
	}
	return value.Float(u.m.Units(seed, week, price)), nil
}

// UnitsFunction returns the UnitsModel VG-Function backed by m.
func (m *RevenueModel) UnitsFunction() vg.Function { return &unitsFunc{m: m} }

// RegisterDefaults registers the demo models with their default
// calibrations: DemandModel, CapacityModel, RevenueModel and UnitsModel.
func RegisterDefaults(r *vg.Registry) error {
	if err := r.Register(NewDemandModel(DefaultDemandConfig())); err != nil {
		return err
	}
	if err := r.Register(NewCapacityModel(DefaultCapacityConfig())); err != nil {
		return err
	}
	rev := NewRevenueModel(DefaultRevenueConfig())
	if err := r.Register(rev); err != nil {
		return err
	}
	return r.Register(rev.UnitsFunction())
}

func weekArg(fn string, args []value.Value, idx int) (int, error) {
	w, err := args[idx].AsInt()
	if err != nil {
		return 0, fmt.Errorf("models: %s week argument: %v", fn, err)
	}
	if w < 0 || w >= Weeks {
		return 0, fmt.Errorf("models: %s week %d outside [0, %d]", fn, w, Weeks-1)
	}
	return int(w), nil
}
