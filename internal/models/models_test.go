package models

import (
	"math"
	"testing"
	"testing/quick"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

func worldSeeds(n int) []uint64 {
	return rng.NewSeedSequence(2011, "worlds").First(n)
}

func TestDemandDeterministic(t *testing.T) {
	m := NewDemandModel(DefaultDemandConfig())
	for _, w := range []int{0, 10, 30, 52} {
		a := m.At(42, w, 12)
		b := m.At(42, w, 12)
		if a != b {
			t.Fatalf("demand not deterministic at week %d", w)
		}
	}
}

func TestDemandGrowth(t *testing.T) {
	m := NewDemandModel(DefaultDemandConfig())
	seeds := worldSeeds(2000)
	meanAt := func(week, feature int) float64 {
		var acc stats.Moments
		for _, s := range seeds {
			acc.Add(m.At(s, week, feature))
		}
		return acc.Mean()
	}
	early := meanAt(0, 44)
	late := meanAt(40, 44)
	cfg := DefaultDemandConfig()
	if math.Abs((late-early)-40*cfg.Growth) > 300 {
		t.Errorf("demand growth %g over 40 weeks, want ≈ %g", late-early, 40*cfg.Growth)
	}
	if math.Abs(early-cfg.Base) > 200 {
		t.Errorf("week-0 demand = %g, want ≈ %g", early, cfg.Base)
	}
}

func TestDemandFeatureBump(t *testing.T) {
	m := NewDemandModel(DefaultDemandConfig())
	seeds := worldSeeds(2000)
	meanAt := func(week, feature int) float64 {
		var acc stats.Moments
		for _, s := range seeds {
			acc.Add(m.At(s, week, feature))
		}
		return acc.Mean()
	}
	cfg := DefaultDemandConfig()
	// Fully ramped bump ≈ FeatureBoost.
	with := meanAt(30, 12)
	without := meanAt(30, 44)
	if math.Abs((with-without)-cfg.FeatureBoost) > 300 {
		t.Errorf("feature bump = %g, want ≈ %g", with-without, cfg.FeatureBoost)
	}
	// Ramp: one week after release the bump is FeatureBoost/RampWeeks-ish.
	partial := meanAt(12, 12)
	none := meanAt(12, 44)
	frac := (partial - none) / cfg.FeatureBoost
	want := 1.0 / float64(cfg.FeatureRampWeeks)
	if math.Abs(frac-want) > 0.1 {
		t.Errorf("ramp fraction = %g, want ≈ %g", frac, want)
	}
}

// The identity-mapping property the fingerprint engine depends on: before
// the earlier of two feature dates, demand is bitwise identical across
// feature parameterizations; after both have fully ramped it is identical
// again.
func TestDemandIdentityAcrossFeatureDates(t *testing.T) {
	m := NewDemandModel(DefaultDemandConfig())
	cfg := DefaultDemandConfig()
	for _, seed := range worldSeeds(20) {
		for w := 0; w < 12; w++ {
			if m.At(seed, w, 12) != m.At(seed, w, 36) {
				t.Fatalf("pre-release week %d differs across feature dates", w)
			}
		}
		for w := 36 + cfg.FeatureRampWeeks - 1; w < Weeks; w++ {
			if m.At(seed, w, 12) != m.At(seed, w, 36) {
				t.Fatalf("post-ramp week %d differs across feature dates", w)
			}
		}
	}
}

func TestDemandGenerateValidation(t *testing.T) {
	m := NewDemandModel(DefaultDemandConfig())
	if _, err := m.Generate(1, []value.Value{value.Int(-1), value.Int(12)}); err == nil {
		t.Error("negative week should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Int(99), value.Int(12)}); err == nil {
		t.Error("week out of range should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Str("x"), value.Int(12)}); err == nil {
		t.Error("non-numeric week should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Int(1), value.Str("x")}); err == nil {
		t.Error("non-numeric feature should error")
	}
	v, err := m.Generate(7, []value.Value{value.Int(5), value.Int(12)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsFloat()
	if f != m.At(7, 5, 12) {
		t.Error("Generate disagrees with At")
	}
}

func TestCapacityDeterministic(t *testing.T) {
	m := NewCapacityModel(DefaultCapacityConfig())
	a := m.Series(42, 16, 32)
	b := m.Series(42, 16, 32)
	for w := range a {
		if a[w] != b[w] {
			t.Fatalf("capacity not deterministic at week %d", w)
		}
	}
	if len(a) != Weeks {
		t.Fatalf("series length = %d", len(a))
	}
}

func TestCapacityStartsAtInitial(t *testing.T) {
	cfg := DefaultCapacityConfig()
	m := NewCapacityModel(cfg)
	for _, seed := range worldSeeds(10) {
		if got := m.At(seed, 0, 16, 32); got != cfg.Initial {
			t.Fatalf("week-0 capacity = %g, want %g", got, cfg.Initial)
		}
	}
}

func TestCapacityPurchaseArrivals(t *testing.T) {
	cfg := DefaultCapacityConfig()
	m := NewCapacityModel(cfg)
	seeds := worldSeeds(500)
	for _, seed := range seeds[:50] {
		arr1 := m.ArrivalWeek(seed, 10, 0)
		if arr1 < 10+cfg.LeadTimeMin {
			t.Fatalf("arrival %d before minimum lead", arr1)
		}
		series := m.Series(seed, 10, 40)
		if arr1 < Weeks {
			jump := series[arr1] - series[arr1-1]
			if jump < cfg.BatchCores*0.5 {
				t.Fatalf("no capacity jump at arrival week %d: %g", arr1, jump)
			}
		}
	}
	// Mean capacity with both purchases deployed exceeds initial.
	var acc stats.Moments
	for _, seed := range seeds {
		acc.Add(m.At(seed, 50, 10, 20))
	}
	if acc.Mean() < cfg.Initial+1.5*cfg.BatchCores {
		t.Errorf("late-year capacity mean = %g, expected both batches deployed", acc.Mean())
	}
}

func TestCapacityDeclinesWithoutPurchases(t *testing.T) {
	m := NewCapacityModel(DefaultCapacityConfig())
	seeds := worldSeeds(500)
	var early, late stats.Moments
	for _, seed := range seeds {
		s := m.Series(seed, 52, 52) // purchases effectively never arrive
		early.Add(s[5])
		late.Add(s[50])
	}
	if late.Mean() >= early.Mean() {
		t.Errorf("capacity should decline: week5=%g week50=%g", early.Mean(), late.Mean())
	}
	loss := early.Mean() - late.Mean()
	if loss > 6000 {
		t.Errorf("capacity decline %g too steep for the calibration", loss)
	}
}

// The identity property for the capacity model: weeks before the earliest
// possible arrival of a moved purchase are bitwise identical across the
// move.
func TestCapacityIdentityBeforePurchase(t *testing.T) {
	m := NewCapacityModel(DefaultCapacityConfig())
	for _, seed := range worldSeeds(20) {
		a := m.Series(seed, 20, 40)
		b := m.Series(seed, 28, 40)
		// Both schedules are identical until the first arrival of the
		// earlier schedule (week 20 + min lead at the earliest).
		limit := 20 + DefaultCapacityConfig().LeadTimeMin
		for w := 0; w < limit; w++ {
			if a[w] != b[w] {
				t.Fatalf("week %d differs when moving purchase1 20→28", w)
			}
		}
	}
}

// Once both schedules have fully deployed the same number of batches, the
// capacities differ only by a constant offset of zero — they re-converge
// exactly because failures are keyed by week, not by fleet state.
func TestCapacityReconvergesAfterArrivals(t *testing.T) {
	m := NewCapacityModel(DefaultCapacityConfig())
	for _, seed := range worldSeeds(20) {
		a := m.Series(seed, 8, 16)
		b := m.Series(seed, 12, 16)
		arrA := m.ArrivalWeek(seed, 8, 0)
		arrB := m.ArrivalWeek(seed, 12, 0)
		last := arrA
		if arrB > last {
			last = arrB
		}
		for w := last; w < Weeks; w++ {
			if a[w] != b[w] {
				t.Fatalf("week %d differs after both arrivals (%d, %d)", w, arrA, arrB)
			}
		}
	}
}

func TestCapacityGenerateValidation(t *testing.T) {
	m := NewCapacityModel(DefaultCapacityConfig())
	if _, err := m.Generate(1, []value.Value{value.Int(60), value.Int(0), value.Int(0)}); err == nil {
		t.Error("week out of range should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Int(1), value.Str("x"), value.Int(0)}); err == nil {
		t.Error("bad purchase1 should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Int(1), value.Int(0), value.Str("x")}); err == nil {
		t.Error("bad purchase2 should error")
	}
	v, err := m.Generate(3, []value.Value{value.Int(30), value.Int(8), value.Int(16)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsFloat()
	if f != m.At(3, 30, 8, 16) {
		t.Error("Generate disagrees with At")
	}
}

func TestScenarioShapeDemandCrossesCapacity(t *testing.T) {
	// The demo's Figure-3 narrative: without purchases demand eventually
	// exceeds capacity; with timely purchases the crossing is pushed out.
	dm := NewDemandModel(DefaultDemandConfig())
	cm := NewCapacityModel(DefaultCapacityConfig())
	seeds := worldSeeds(400)
	overloadProb := func(week, p1, p2 int) float64 {
		n := 0
		for _, s := range seeds {
			if cm.At(s, week, p1, p2) < dm.At(s, week, 36) {
				n++
			}
		}
		return float64(n) / float64(len(seeds))
	}
	if p := overloadProb(5, 52, 52); p > 0.02 {
		t.Errorf("early overload probability = %g, want ≈ 0", p)
	}
	if p := overloadProb(40, 52, 52); p < 0.9 {
		t.Errorf("late overload probability without purchases = %g, want ≈ 1", p)
	}
	if p := overloadProb(40, 12, 24); p > 0.2 {
		t.Errorf("late overload probability with purchases = %g, want small", p)
	}
}

func TestRevenueModelElasticity(t *testing.T) {
	m := NewRevenueModel(DefaultRevenueConfig())
	seeds := worldSeeds(1000)
	meanUnits := func(price float64) float64 {
		var acc stats.Moments
		for _, s := range seeds {
			acc.Add(m.Units(s, 10, price))
		}
		return acc.Mean()
	}
	lo := meanUnits(8)
	hi := meanUnits(12)
	if lo <= hi {
		t.Errorf("demand should fall with price: units(8)=%g units(12)=%g", lo, hi)
	}
	// Constant elasticity: log(units) is exactly linear in log(price) for a
	// fixed seed.
	u1 := m.Units(7, 10, 8)
	u2 := m.Units(7, 10, 12)
	cfg := DefaultRevenueConfig()
	wantRatio := math.Pow(8.0/12.0, -cfg.Elasticity)
	if math.Abs(u1/u2-wantRatio) > 1e-9 {
		t.Errorf("fixed-seed unit ratio = %g, want %g", u1/u2, wantRatio)
	}
}

func TestRevenueGenerateValidation(t *testing.T) {
	m := NewRevenueModel(DefaultRevenueConfig())
	if _, err := m.Generate(1, []value.Value{value.Int(1), value.Float(-5)}); err == nil {
		t.Error("negative price should error")
	}
	if _, err := m.Generate(1, []value.Value{value.Int(99), value.Float(5)}); err == nil {
		t.Error("week out of range should error")
	}
	uf := m.UnitsFunction()
	if uf.Name() != "UnitsModel" || uf.Arity() != 2 {
		t.Errorf("units function meta = %s/%d", uf.Name(), uf.Arity())
	}
	if _, err := uf.Generate(1, []value.Value{value.Int(1), value.Float(0)}); err == nil {
		t.Error("zero price should error in UnitsModel")
	}
	v, err := uf.Generate(9, []value.Value{value.Int(4), value.Float(10)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsFloat()
	if f != m.Units(9, 4, 10) {
		t.Error("UnitsModel disagrees with Units")
	}
}

func TestRegisterDefaults(t *testing.T) {
	r := vg.NewRegistry()
	if err := RegisterDefaults(r); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"DemandModel", "CapacityModel", "RevenueModel", "UnitsModel"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("%s not registered", name)
		}
		args := []value.Value{value.Int(5), value.Int(12)}
		if name == "CapacityModel" {
			args = []value.Value{value.Int(5), value.Int(12), value.Int(20)}
		}
		if name == "RevenueModel" || name == "UnitsModel" {
			args = []value.Value{value.Int(5), value.Float(10)}
		}
		if err := r.CheckDeterminism(name, 77, args); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Registering twice fails cleanly.
	if err := RegisterDefaults(r); err == nil {
		t.Error("double registration should error")
	}
}

// Property: the demand model never returns NaN/Inf and capacity stays
// finite, for arbitrary valid parameters.
func TestQuickModelsFinite(t *testing.T) {
	dm := NewDemandModel(DefaultDemandConfig())
	cm := NewCapacityModel(DefaultCapacityConfig())
	f := func(seed uint64, wi, fi, p1i, p2i uint8) bool {
		w := int(wi) % Weeks
		feat := int(fi) % Weeks
		p1 := int(p1i) % Weeks
		p2 := int(p2i) % Weeks
		d := dm.At(seed, w, feat)
		c := cm.At(seed, w, p1, p2)
		return !math.IsNaN(d) && !math.IsInf(d, 0) && !math.IsNaN(c) && !math.IsInf(c, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
