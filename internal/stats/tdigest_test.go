package stats

import (
	"math"
	"math/rand"
	"testing"
)

// quantileRankError asserts that the digest's estimate for q lies between
// the exact (tol-widened) rank quantiles of the sorted data.
func quantileRankError(t *testing.T, td *TDigest, xs []float64, q, tol float64) {
	t.Helper()
	got, err := td.Quantile(q)
	if err != nil {
		t.Fatalf("Quantile(%g): %v", q, err)
	}
	lo, _ := Quantile(xs, math.Max(0, q-tol))
	hi, _ := Quantile(xs, math.Min(1, q+tol))
	if got < lo || got > hi {
		t.Errorf("Quantile(%g) = %g outside rank-tolerance window [%g, %g]", q, got, lo, hi)
	}
}

func TestTDigestAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform":     rng.Float64,
		"normal":      rng.NormFloat64,
		"exponential": rng.ExpFloat64,
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			xs := make([]float64, 20000)
			td := NewTDigest(0)
			for i := range xs {
				xs[i] = draw()
				td.Add(xs[i])
			}
			for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
				quantileRankError(t, td, xs, q, 0.015)
			}
			if td.Count() != int64(len(xs)) {
				t.Errorf("count = %d, want %d", td.Count(), len(xs))
			}
		})
	}
}

func TestTDigestExtremes(t *testing.T) {
	td := NewTDigest(0)
	xs := []float64{5, -3, 12, 0, 7}
	td.AddAll(xs)
	if v, _ := td.Quantile(0); v != -3 {
		t.Errorf("q0 = %g, want -3", v)
	}
	if v, _ := td.Quantile(1); v != 12 {
		t.Errorf("q1 = %g, want 12", v)
	}
	if td.Min() != -3 || td.Max() != 12 {
		t.Errorf("min/max = %g/%g", td.Min(), td.Max())
	}
}

func TestTDigestSmallAndEmpty(t *testing.T) {
	td := NewTDigest(0)
	if v, err := td.Quantile(0.5); err != nil || v != 0 {
		t.Errorf("empty quantile = %g, %v", v, err)
	}
	if td.Min() != 0 || td.Max() != 0 {
		t.Errorf("empty min/max = %g/%g", td.Min(), td.Max())
	}
	td.Add(4)
	if v, _ := td.Quantile(0.5); v != 4 {
		t.Errorf("single-sample median = %g", v)
	}
	if _, err := td.Quantile(1.5); err == nil {
		t.Error("q outside [0,1] should error")
	}
}

// TestTDigestMergeMatchesWhole: a digest merged from disjoint shards
// estimates quantiles as well as one built over the whole vector.
func TestTDigestMergeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	for _, shards := range []int{2, 7, 16} {
		merged := NewTDigest(0)
		chunk := (len(xs) + shards - 1) / shards
		for lo := 0; lo < len(xs); lo += chunk {
			hi := lo + chunk
			if hi > len(xs) {
				hi = len(xs)
			}
			part := NewTDigest(0)
			part.AddAll(xs[lo:hi])
			merged.Merge(part)
		}
		if merged.Count() != int64(len(xs)) {
			t.Fatalf("%d shards: merged count = %d", shards, merged.Count())
		}
		for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
			quantileRankError(t, merged, xs, q, 0.02)
		}
	}
}

// TestTDigestMergeOrderInvariance: merging the same partial digests in any
// order yields quantile estimates that agree within the sketch tolerance.
func TestTDigestMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const shards = 8
	parts := make([]*TDigest, shards)
	var all []float64
	for s := range parts {
		parts[s] = NewTDigest(0)
		for i := 0; i < 4000; i++ {
			x := rng.ExpFloat64() * float64(s+1)
			parts[s].Add(x)
			all = append(all, x)
		}
	}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 7, 2, 5, 4},
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95} {
		var estimates []float64
		for _, order := range orders {
			m := NewTDigest(0)
			for _, s := range order {
				m.Merge(parts[s])
			}
			quantileRankError(t, m, all, q, 0.025)
			v, _ := m.Quantile(q)
			estimates = append(estimates, v)
		}
		// All merge orders must land inside a narrow band of each other.
		lo, _ := Quantile(all, math.Max(0, q-0.025))
		hi, _ := Quantile(all, math.Min(1, q+0.025))
		band := hi - lo
		for i := 1; i < len(estimates); i++ {
			if math.Abs(estimates[i]-estimates[0]) > band {
				t.Errorf("q=%g: merge orders disagree beyond tolerance: %v (band %g)", q, estimates, band)
			}
		}
	}
}

func TestTDigestCentroidRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	td := NewTDigest(100)
	for i := 0; i < 10000; i++ {
		td.Add(rng.Float64() * 50)
	}
	restored := TDigestFromCentroids(td.Compression(), td.Centroids(), td.Min(), td.Max())
	if restored.Count() != td.Count() {
		t.Fatalf("restored count = %d, want %d", restored.Count(), td.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		a, _ := td.Quantile(q)
		b, _ := restored.Quantile(q)
		if a != b {
			t.Errorf("q=%g: restored %g != original %g", q, b, a)
		}
	}
}

func TestTDigestDeterministic(t *testing.T) {
	build := func() *TDigest {
		td := NewTDigest(0)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 5000; i++ {
			td.Add(rng.NormFloat64())
		}
		return td
	}
	a, b := build(), build()
	for _, q := range []float64{0.1, 0.5, 0.9} {
		va, _ := a.Quantile(q)
		vb, _ := b.Quantile(q)
		if va != vb {
			t.Errorf("q=%g: same input sequence produced %g vs %g", q, va, vb)
		}
	}
}

func TestTDigestCompressionBound(t *testing.T) {
	td := NewTDigest(100)
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 100000; i++ {
		td.Add(rng.Float64())
	}
	if n := len(td.Centroids()); n > 250 {
		t.Errorf("centroid count %d exceeds ~2.5x compression bound", n)
	}
}
