package stats

import (
	"fmt"
	"math"
	"sort"
)

// TDigest is a mergeable quantile sketch in the style of Dunning's t-digest
// (the merging variant): observations are folded into a bounded list of
// (mean, weight) centroids whose sizes shrink toward the distribution's
// tails, so extreme quantiles stay sharp while the middle is summarized
// coarsely.
//
// Unlike the P² estimator it replaces in the Result Aggregator, a TDigest
// MERGES: two digests built over disjoint sample ranges combine into one
// whose quantile estimates match a digest built over the union, within the
// sketch's accuracy. That is the property world sharding needs — each shard
// folds its world range locally and the coordinator merges the partial
// sketches, with no per-world second pass.
//
// Determinism: Add and Merge are pure functions of the observation sequence
// (no randomness, no time), so a fixed shard topology always produces the
// same digest. Across DIFFERENT merge orders the centroid lists may differ;
// quantile estimates then agree within the sketch tolerance (the
// merge-order-invariance test pins this).
type TDigest struct {
	compression float64
	centroids   []Centroid // sorted by Mean, tie-broken stably by fold order
	total       float64    // summed centroid weight (excludes buffer)
	min, max    float64

	buf []float64 // unmerged raw observations
}

// Centroid is one (mean, weight) cluster of a TDigest.
type Centroid struct {
	Mean   float64 `json:"m"`
	Weight float64 `json:"w"`
}

// DefaultCompression balances accuracy against sketch size: ~2·δ centroids
// worst case, with mid-quantile rank error well under 1%.
const DefaultCompression = 200

// tdigestBufferSize bounds the unmerged observation buffer before a
// compaction pass runs.
const tdigestBufferSize = 512

// NewTDigest returns an empty digest with the given compression δ
// (values <= 0 take DefaultCompression).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = DefaultCompression
	}
	return &TDigest{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add folds one observation into the digest. NaN observations are
// ignored: a NaN has no rank, so folding it in could only poison the
// centroid means (quantiles over a vector with NaNs are computed over its
// non-NaN values; the Welford moments alongside still propagate NaN, so a
// poisoned column is visible in the mean).
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf = append(t.buf, x)
	if len(t.buf) >= tdigestBufferSize {
		t.flush()
	}
}

// AddAll folds a whole sample vector in.
func (t *TDigest) AddAll(xs []float64) {
	for _, x := range xs {
		t.Add(x)
	}
}

// Count returns the number of observations folded in.
func (t *TDigest) Count() int64 {
	return int64(t.total) + int64(len(t.buf))
}

// Merge folds another digest into t. The other digest is not modified.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil || o.Count() == 0 {
		return
	}
	if o.min < t.min {
		t.min = o.min
	}
	if o.max > t.max {
		t.max = o.max
	}
	t.flush()
	incoming := make([]Centroid, 0, len(o.centroids)+len(o.buf))
	incoming = append(incoming, o.centroids...)
	for _, x := range o.buf {
		incoming = append(incoming, Centroid{Mean: x, Weight: 1})
	}
	sort.SliceStable(incoming, func(i, j int) bool { return incoming[i].Mean < incoming[j].Mean })
	t.mergeSorted(incoming)
}

// flush compacts the raw-observation buffer into the centroid list.
func (t *TDigest) flush() {
	if len(t.buf) == 0 {
		return
	}
	sort.Float64s(t.buf)
	incoming := make([]Centroid, len(t.buf))
	for i, x := range t.buf {
		incoming[i] = Centroid{Mean: x, Weight: 1}
	}
	t.buf = t.buf[:0]
	t.mergeSorted(incoming)
}

// kScale is the k₁ scale function δ/(2π)·asin(2q−1): its unit steps allot
// many small centroids near q=0 and q=1 and few large ones in the middle.
func (t *TDigest) kScale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// mergeSorted merges a mean-sorted centroid batch with the existing list
// and recompresses, greedily packing adjacent centroids while the k-scale
// budget allows.
func (t *TDigest) mergeSorted(incoming []Centroid) {
	if len(incoming) == 0 {
		return
	}
	merged := make([]Centroid, 0, len(t.centroids)+len(incoming))
	i, j := 0, 0
	for i < len(t.centroids) || j < len(incoming) {
		switch {
		case i == len(t.centroids):
			merged = append(merged, incoming[j])
			j++
		case j == len(incoming):
			merged = append(merged, t.centroids[i])
			i++
		case t.centroids[i].Mean <= incoming[j].Mean:
			merged = append(merged, t.centroids[i])
			i++
		default:
			merged = append(merged, incoming[j])
			j++
		}
	}
	var total float64
	for _, c := range merged {
		total += c.Weight
	}

	out := merged[:0]
	cur := merged[0]
	var before float64 // weight strictly left of cur
	kLeft := t.kScale(0)
	for _, c := range merged[1:] {
		q := (before + cur.Weight + c.Weight) / total
		if t.kScale(q)-kLeft <= 1 {
			// Weighted mean keeps the combined centroid exact. The delta is
			// skipped for equal means so two infinite centroids of the same
			// sign combine to that infinity instead of Inf-Inf = NaN.
			w := cur.Weight + c.Weight
			if c.Mean != cur.Mean {
				cur.Mean += (c.Mean - cur.Mean) * c.Weight / w
			}
			cur.Weight = w
			continue
		}
		before += cur.Weight
		kLeft = t.kScale(before / total)
		out = append(out, cur)
		cur = c
	}
	out = append(out, cur)
	t.centroids = out
	t.total = total
}

// Quantile returns the estimated q-quantile (0<=q<=1). With no
// observations it returns 0; outside [0,1] it returns an error.
func (t *TDigest) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: t-digest quantile q=%g outside [0,1]", q)
	}
	t.flush()
	if len(t.centroids) == 0 {
		return 0, nil
	}
	if len(t.centroids) == 1 {
		return t.centroids[0].Mean, nil
	}
	if q == 0 {
		return t.min, nil
	}
	if q == 1 {
		return t.max, nil
	}
	target := q * t.total
	// Walk cumulative weight treating each centroid's mass as centered on
	// its mean, interpolating linearly between adjacent centers (the
	// standard t-digest readout), clamped to the observed [min, max].
	var cum float64
	for i, c := range t.centroids {
		center := cum + c.Weight/2
		if target <= center {
			if i == 0 {
				// Below the first center: interpolate from the minimum.
				frac := target / center
				return t.min + frac*(c.Mean-t.min), nil
			}
			prev := t.centroids[i-1]
			prevCenter := cum - prev.Weight/2
			frac := (target - prevCenter) / (center - prevCenter)
			return prev.Mean + frac*(c.Mean-prev.Mean), nil
		}
		cum += c.Weight
	}
	// Above the last center: interpolate toward the maximum.
	last := t.centroids[len(t.centroids)-1]
	lastCenter := t.total - last.Weight/2
	if t.total == lastCenter {
		return t.max, nil
	}
	frac := (target - lastCenter) / (t.total - lastCenter)
	return last.Mean + frac*(t.max-last.Mean), nil
}

// Min and Max return the observed extremes (0 when empty).
func (t *TDigest) Min() float64 {
	if t.Count() == 0 {
		return 0
	}
	return t.min
}

// Max returns the observed maximum (0 when empty).
func (t *TDigest) Max() float64 {
	if t.Count() == 0 {
		return 0
	}
	return t.max
}

// Compression returns the digest's compression parameter δ.
func (t *TDigest) Compression() float64 { return t.compression }

// Centroids compacts the buffer and returns a copy of the centroid list —
// the digest's serializable state, alongside Min/Max/Compression.
func (t *TDigest) Centroids() []Centroid {
	t.flush()
	return append([]Centroid(nil), t.centroids...)
}

// TDigestFromCentroids rebuilds a digest from serialized state: the
// centroid list (mean-sorted or not), observed extremes and compression.
// The inverse of Centroids/Min/Max/Compression, used by the HTTP shard
// protocol to ship partial sketches between workers and the coordinator.
//
// Wire state is untrusted: centroids with a NaN mean or a non-positive,
// NaN or infinite weight are dropped (they cannot correspond to any
// observation sequence), and min/max are re-clamped against the surviving
// centroid means so a hostile or torn sketch can never push quantile
// readouts outside the centroid envelope.
func TDigestFromCentroids(compression float64, centroids []Centroid, min, max float64) *TDigest {
	t := NewTDigest(compression)
	cs := make([]Centroid, 0, len(centroids))
	for _, c := range centroids {
		if math.IsNaN(c.Mean) || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) || c.Weight <= 0 {
			continue
		}
		cs = append(cs, c)
	}
	if len(cs) == 0 {
		return t
	}
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Mean < cs[j].Mean })
	t.mergeSorted(cs)
	t.min, t.max = min, max
	// A centroid mean is an average of observations, so min <= smallest
	// mean and max >= largest mean must hold; repair state that violates it.
	if lo := t.centroids[0].Mean; math.IsNaN(t.min) || t.min > lo {
		t.min = lo
	}
	if hi := t.centroids[len(t.centroids)-1].Mean; math.IsNaN(t.max) || t.max < hi {
		t.max = hi
	}
	return t
}
