// Package stats provides the streaming statistics substrate used by Fuzzy
// Prophet's Result Aggregator and by the fingerprint engine.
//
// Everything here is numerically careful and allocation-light: the
// aggregator runs once per (group, column, world) and the fingerprint
// correlator runs once per candidate (basis, target) pair during parameter
// exploration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean and variance online using Welford's
// algorithm. The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// AddN folds x in n times (used when re-weighting mapped samples).
func (m *Moments) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		m.Add(x)
	}
}

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	delta := o.mean - m.mean
	total := m.n + o.n
	m.m2 += o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(total)
	m.mean += delta * float64(o.n) / float64(total)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = total
}

// Count returns the number of samples.
func (m *Moments) Count() int64 { return m.n }

// State returns the accumulator's raw state (count, mean, M2 sum of squared
// deviations, min, max) — the serializable form the shard protocol ships
// between workers and the coordinator.
func (m *Moments) State() (n int64, mean, m2, min, max float64) {
	return m.n, m.mean, m.m2, m.min, m.max
}

// MomentsFromState rebuilds an accumulator from State's raw form. A
// round-trip through State/MomentsFromState is exact, so merging restored
// accumulators behaves identically to merging the originals.
func MomentsFromState(n int64, mean, m2, min, max float64) Moments {
	if n <= 0 {
		return Moments{}
	}
	return Moments{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the minimum sample (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the maximum sample (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// StdErr returns the standard error of the mean (0 when n < 2).
func (m *Moments) StdErr() float64 {
	if m.n < 2 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean. This drives the online mode's notion of an
// "accurate guess".
func (m *Moments) CI95() float64 { return 1.96 * m.StdErr() }

// Converged reports whether the 95% CI half-width is below eps, requiring a
// minimum sample count to avoid declaring victory on degenerate early runs.
func (m *Moments) Converged(eps float64, minSamples int64) bool {
	if m.n < minSamples {
		return false
	}
	return m.CI95() <= eps
}

// Correlation computes the Pearson correlation coefficient of two equal-
// length vectors. It returns an error when lengths differ or n < 2, and 0
// when either side has zero variance (the caller must treat that case
// specially: a constant output is trivially mappable).
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: correlation length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: correlation needs at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// AffineFit is the least-squares fit y ≈ A*x + B plus goodness measures.
// It is the mapping the fingerprint engine uses to re-map sample sets
// between correlated parameter points.
type AffineFit struct {
	A, B float64
	// RMSE is the root-mean-square residual of the fit.
	RMSE float64
	// RelRMSE is RMSE divided by the standard deviation of y; 0 means the
	// mapping is exact, 1 means the fit explains nothing. For constant y
	// (zero variance) RelRMSE is 0 when the fit is exact and +Inf otherwise.
	RelRMSE float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitAffine computes the least-squares affine map from x to y. When x has
// zero variance the fit degenerates to the constant map B = mean(y), A = 0.
func FitAffine(x, y []float64) (AffineFit, error) {
	if len(x) != len(y) {
		return AffineFit{}, fmt.Errorf("stats: affine fit length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return AffineFit{}, fmt.Errorf("stats: affine fit needs at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	var fit AffineFit
	if sxx == 0 {
		fit.A = 0
		fit.B = my
	} else {
		fit.A = sxy / sxx
		fit.B = my - fit.A*mx
	}
	var sse float64
	for i := range x {
		r := y[i] - (fit.A*x[i] + fit.B)
		sse += r * r
	}
	fit.RMSE = math.Sqrt(sse / n)
	sdY := math.Sqrt(syy / n)
	switch {
	case sdY > 0:
		fit.RelRMSE = fit.RMSE / sdY
	case fit.RMSE == 0:
		fit.RelRMSE = 0
	default:
		fit.RelRMSE = math.Inf(1)
	}
	if syy == 0 {
		if sse == 0 {
			fit.R2 = 1
		} else {
			fit.R2 = 0
		}
	} else {
		fit.R2 = 1 - sse/syy
	}
	return fit, nil
}

// Apply maps a single value through the fit.
func (f AffineFit) Apply(x float64) float64 { return f.A*x + f.B }

// ApplySlice maps a whole sample vector through the fit, allocating the
// result.
func (f AffineFit) ApplySlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f.A*x + f.B
	}
	return out
}

// MaxAbsDiff returns the maximum absolute elementwise difference of two
// equal-length vectors, used for identity-mapping detection.
func MaxAbsDiff(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: MaxAbsDiff length mismatch %d vs %d", len(x), len(y))
	}
	var m float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}

// KSDistance computes the two-sample Kolmogorov–Smirnov statistic, the
// maximum distance between empirical CDFs. The fingerprint validator uses
// it to check that a re-mapped sample set is distributionally close to a
// directly simulated one.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: KSDistance needs non-empty samples")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// Quantile returns the q-quantile (0<=q<=1) of xs by sorting a copy and
// linearly interpolating. It returns an error on empty input or q outside
// [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile q=%g outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac 1985) in O(1) memory. It is used by the aggregator for
// live quantile readouts over long Monte Carlo runs.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2Quantile returns an estimator for the p-quantile (0<p<1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: P2 quantile p=%g outside (0,1)", p)
	}
	q := &P2Quantile{p: p}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Add folds one observation into the estimator.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.initial = append(q.initial, x)
		q.n++
		if q.n == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}
	q.n++
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < q.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.incr[i]
	}
	for i := 1; i < 4; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return q.heights[i] + d*(q.heights[i+di]-q.heights[i])/(q.pos[i+di]-q.pos[i])
}

// Value returns the current quantile estimate. Before 5 samples it falls
// back to the sorted-sample quantile of what it has; with no samples it
// returns 0.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		v, err := Quantile(s, q.p)
		if err != nil {
			return 0
		}
		return v
	}
	return q.heights[2]
}

// Count returns the number of observations folded in.
func (q *P2Quantile) Count() int { return q.n }

// Histogram is a fixed-bin histogram over [lo, hi) with overflow/underflow
// buckets, used by the viz package for distribution readouts.
type Histogram struct {
	lo, hi   float64
	bins     []int64
	under    int64
	over     int64
	observed int64
}

// NewHistogram returns a histogram with n bins over [lo, hi). It returns an
// error when n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g,%g) is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, n)}, nil
}

// Add folds one observation in.
func (h *Histogram) Add(x float64) {
	h.observed++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int64 { return append([]int64(nil), h.bins...) }

// Under returns the underflow count.
func (h *Histogram) Under() int64 { return h.under }

// Over returns the overflow count.
func (h *Histogram) Over() int64 { return h.over }

// Count returns the total observations.
func (h *Histogram) Count() int64 { return h.observed }

// BinRange returns the [lo, hi) range of bin i.
func (h *Histogram) BinRange(i int) (float64, float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}
