package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fuzzyprophet/internal/rng"
)

func naiveMoments(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var sse float64
	for _, x := range xs {
		d := x - mean
		sse += d * d
	}
	return mean, sse / float64(len(xs)-1)
}

func TestMomentsBasics(t *testing.T) {
	var m Moments
	if m.Count() != 0 || m.Mean() != 0 || m.Variance() != 0 {
		t.Fatal("zero Moments must be empty")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.Count() != 5 {
		t.Errorf("count = %d", m.Count())
	}
	if m.Mean() != 3 {
		t.Errorf("mean = %g", m.Mean())
	}
	if math.Abs(m.Variance()-2.5) > 1e-12 {
		t.Errorf("variance = %g, want 2.5", m.Variance())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Errorf("min/max = %g/%g", m.Min(), m.Max())
	}
	if math.Abs(m.StdDev()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g", m.StdDev())
	}
}

// Property: Welford matches the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		wantMean, wantVar := naiveMoments(xs)
		scale := 1.0 + math.Abs(wantMean)
		if math.Abs(m.Mean()-wantMean) > 1e-9*scale {
			return false
		}
		return math.Abs(m.Variance()-wantVar) <= 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Merge(a,b) equals feeding all samples into one accumulator.
func TestQuickMergeEquivalent(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var ma, mb, mall Moments
		for _, x := range a {
			ma.Add(x)
			mall.Add(x)
		}
		for _, x := range b {
			mb.Add(x)
			mall.Add(x)
		}
		ma.Merge(&mb)
		if ma.Count() != mall.Count() {
			return false
		}
		scale := 1 + math.Abs(mall.Mean())
		return math.Abs(ma.Mean()-mall.Mean()) < 1e-9*scale &&
			math.Abs(ma.Variance()-mall.Variance()) < 1e-6*(1+mall.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Moments
	b.Add(2)
	b.Add(4)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 3 {
		t.Errorf("merge into empty: count=%d mean=%g", a.Count(), a.Mean())
	}
	var c Moments
	a.Merge(&c)
	if a.Count() != 2 {
		t.Error("merging empty should be a no-op")
	}
}

func TestAddN(t *testing.T) {
	var a, b Moments
	a.AddN(5, 3)
	for i := 0; i < 3; i++ {
		b.Add(5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Error("AddN should equal repeated Add")
	}
}

func TestCI95AndConvergence(t *testing.T) {
	var m Moments
	if m.CI95() != 0 {
		t.Error("empty CI must be 0")
	}
	s := rng.New(5)
	for i := 0; i < 10; i++ {
		m.Add(s.Normal(0, 1))
	}
	if m.Converged(0.0001, 100) {
		t.Error("should not converge below minSamples")
	}
	for i := 0; i < 100000; i++ {
		m.Add(s.Normal(0, 1))
	}
	if !m.Converged(0.05, 100) {
		t.Errorf("should have converged: CI=%g", m.CI95())
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Correlation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %g", r)
	}
	yneg := []float64{8, 6, 4, 2}
	r, _ = Correlation(x, yneg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %g", r)
	}
	flat := []float64{5, 5, 5, 5}
	r, err = Correlation(x, flat)
	if err != nil || r != 0 {
		t.Errorf("zero-variance correlation = %g, %v", r, err)
	}
	if _, err := Correlation(x, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestFitAffineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5*v - 3
	}
	fit, err := FitAffine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-2.5) > 1e-12 || math.Abs(fit.B+3) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.RMSE > 1e-12 || fit.RelRMSE > 1e-12 {
		t.Errorf("exact fit residual = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g", fit.R2)
	}
	if got := fit.Apply(10); math.Abs(got-22) > 1e-12 {
		t.Errorf("Apply(10) = %g", got)
	}
	mapped := fit.ApplySlice([]float64{0, 1})
	if mapped[0] != -3 || math.Abs(mapped[1]-(-0.5)) > 1e-12 {
		t.Errorf("ApplySlice = %v", mapped)
	}
}

func TestFitAffineConstantX(t *testing.T) {
	x := []float64{2, 2, 2}
	y := []float64{5, 7, 9}
	fit, err := FitAffine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.A != 0 || fit.B != 7 {
		t.Errorf("degenerate fit = %+v", fit)
	}
}

func TestFitAffineConstantYExact(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 4, 4}
	fit, err := FitAffine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RelRMSE != 0 {
		t.Errorf("constant-y exact fit RelRMSE = %g", fit.RelRMSE)
	}
	if fit.R2 != 1 {
		t.Errorf("constant-y exact fit R2 = %g", fit.R2)
	}
}

func TestFitAffineErrors(t *testing.T) {
	if _, err := FitAffine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitAffine([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should error")
	}
}

// Property: FitAffine recovers a planted affine relation on noiseless data.
func TestQuickFitAffineRecoversPlanted(t *testing.T) {
	f := func(seed uint64, ai, bi int16) bool {
		a := float64(ai) / 64
		b := float64(bi) / 64
		s := rng.New(seed)
		x := make([]float64, 16)
		y := make([]float64, 16)
		spread := false
		for i := range x {
			x[i] = s.Normal(0, 10)
			y[i] = a*x[i] + b
			if i > 0 && x[i] != x[0] {
				spread = true
			}
		}
		if !spread {
			return true
		}
		fit, err := FitAffine(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 1e-6*(1+math.Abs(a)) && math.Abs(fit.B-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	d, err := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 2.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	if _, err := MaxAbsDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestKSDistance(t *testing.T) {
	s := rng.New(77)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	c := make([]float64, 2000)
	for i := range a {
		a[i] = s.Normal(0, 1)
		b[i] = s.Normal(0, 1)
		c[i] = s.Normal(3, 1)
	}
	same, err := KSDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := KSDistance(a, c)
	if same > 0.08 {
		t.Errorf("same-distribution KS = %g, expected small", same)
	}
	if diff < 0.5 {
		t.Errorf("shifted-distribution KS = %g, expected large", diff)
	}
	if _, err := KSDistance(nil, a); err == nil {
		t.Error("empty sample should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	for _, tt := range []struct {
		q    float64
		want float64
	}{{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}} {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q out of range should error")
	}
	one, err := Quantile([]float64{9}, 0.7)
	if err != nil || one != 9 {
		t.Errorf("single-sample quantile = %g, %v", one, err)
	}
}

func TestP2QuantileAgainstSort(t *testing.T) {
	s := rng.New(123)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		est, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = s.Normal(0, 1)
			est.Add(xs[i])
		}
		sort.Float64s(xs)
		want, _ := Quantile(xs, p)
		got := est.Value()
		if math.Abs(got-want) > 0.05 {
			t.Errorf("P2(%g) = %g, sorted = %g", p, got, want)
		}
		if est.Count() != len(xs) {
			t.Errorf("P2 count = %d", est.Count())
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	est, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	est.Add(3)
	est.Add(1)
	est.Add(2)
	if got := est.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %g", got)
	}
}

func TestP2QuantileInvalidP(t *testing.T) {
	if _, err := NewP2Quantile(0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := NewP2Quantile(1); err == nil {
		t.Error("p=1 should error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 100} {
		h.Add(x)
	}
	bins := h.Bins()
	if bins[0] != 2 { // 0, 1.9
		t.Errorf("bin0 = %d", bins[0])
	}
	if bins[1] != 1 { // 2
		t.Errorf("bin1 = %d", bins[1])
	}
	if bins[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", bins[4])
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Errorf("under/over = %d/%d", h.Under(), h.Over())
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	lo, hi := h.BinRange(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinRange(1) = [%g,%g)", lo, hi)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range should error")
	}
}
