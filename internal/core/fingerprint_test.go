package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/value"
)

// gauss simulates a VG function: a normal variate whose mean and stddev are
// the "parameters".
func gauss(mean, stddev float64) func(seed uint64) (float64, error) {
	return func(seed uint64) (float64, error) {
		return rng.New(seed).Normal(mean, stddev), nil
	}
}

func TestComputeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Compute(cfg, gauss(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(cfg, gauss(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outputs) != cfg.Length {
		t.Fatalf("fingerprint length = %d", len(a.Outputs))
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Fatal("fingerprints of identical functions must be identical")
		}
	}
}

func TestComputeErrors(t *testing.T) {
	cfg := DefaultConfig()
	sentinel := errors.New("model exploded")
	_, err := Compute(cfg, func(uint64) (float64, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("error not propagated: %v", err)
	}
	_, err = Compute(cfg, func(uint64) (float64, error) { return math.NaN(), nil })
	if err == nil {
		t.Error("NaN output should error")
	}
	_, err = Compute(cfg, func(uint64) (float64, error) { return math.Inf(1), nil })
	if err == nil {
		t.Error("Inf output should error")
	}
	bad := cfg
	bad.Length = 1
	if _, err := Compute(bad, gauss(0, 1)); err == nil {
		t.Error("too-short config should error")
	}
}

func TestMatchIdentity(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Compute(cfg, gauss(5, 1))
	b, _ := Compute(cfg, gauss(5, 1))
	m, err := Match(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MappingIdentity {
		t.Fatalf("kind = %v, want identity", m.Kind)
	}
	samples := []float64{1, 2, 3}
	mapped, err := m.Apply(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if mapped[i] != samples[i] {
			t.Error("identity mapping must preserve samples")
		}
	}
	// Apply must copy, not alias.
	mapped[0] = 99
	if samples[0] == 99 {
		t.Error("identity Apply must not alias input")
	}
	y, err := m.ApplyOne(7)
	if err != nil || y != 7 {
		t.Errorf("ApplyOne identity = %g, %v", y, err)
	}
}

func TestMatchAffine(t *testing.T) {
	cfg := DefaultConfig()
	base, _ := Compute(cfg, gauss(0, 1))
	// Shifted and scaled versions of the same underlying variate: exact
	// affine relation y = 3x + 10.
	shifted, _ := Compute(cfg, func(seed uint64) (float64, error) {
		return 3*rng.New(seed).Normal(0, 1) + 10, nil
	})
	m, err := Match(cfg, base, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MappingAffine {
		t.Fatalf("kind = %v, want affine", m.Kind)
	}
	if math.Abs(m.Fit.A-3) > 1e-9 || math.Abs(m.Fit.B-10) > 1e-9 {
		t.Errorf("fit = %+v", m.Fit)
	}
	if m.Correlation < 0.999 {
		t.Errorf("correlation = %g", m.Correlation)
	}
	y, err := m.ApplyOne(2)
	if err != nil || math.Abs(y-16) > 1e-9 {
		t.Errorf("ApplyOne = %g", y)
	}
}

func TestMatchNone(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Compute(cfg, gauss(0, 1))
	// An unrelated stream: different seed derivation breaks correlation.
	b, _ := Compute(cfg, func(seed uint64) (float64, error) {
		return rng.Derive(seed, "other", 1).Normal(0, 1), nil
	})
	m, err := Match(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MappingNone {
		t.Fatalf("kind = %v, want none (corr=%g)", m.Kind, m.Correlation)
	}
	if _, err := m.Apply([]float64{1}); err == nil {
		t.Error("applying a none mapping should error")
	}
	if _, err := m.ApplyOne(1); err == nil {
		t.Error("ApplyOne on none mapping should error")
	}
}

func TestMatchLengthMismatch(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Compute(cfg, gauss(0, 1))
	short := Fingerprint{Outputs: []float64{1, 2}}
	if _, err := Match(cfg, a, short); err == nil {
		t.Error("length mismatch should error")
	}
	tiny := Fingerprint{Outputs: []float64{1}}
	if _, err := Match(cfg, tiny, tiny); err == nil {
		t.Error("too-short fingerprints should error")
	}
}

// Property: for any affine transformation of a common underlying variate,
// Match finds the planted (A, B) and re-mapped Monte Carlo samples equal
// direct simulation exactly.
func TestQuickAffineRemapExact(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ai, bi int16) bool {
		a := 0.5 + math.Abs(float64(ai))/2048 // keep away from degenerate a=0
		b := float64(bi) / 128
		basisFn := gauss(0, 1)
		targetFn := func(seed uint64) (float64, error) {
			x, _ := basisFn(seed)
			return a*x + b, nil
		}
		fpB, err := Compute(cfg, basisFn)
		if err != nil {
			return false
		}
		fpT, err := Compute(cfg, targetFn)
		if err != nil {
			return false
		}
		m, err := Match(cfg, fpB, fpT)
		if err != nil || m.Kind == MappingNone {
			return false
		}
		// Simulate 100 worlds at the basis, remap, compare with direct.
		worlds := rng.NewSeedSequence(99, "worlds").First(100)
		basisSamples := make([]float64, len(worlds))
		directSamples := make([]float64, len(worlds))
		for i, s := range worlds {
			basisSamples[i], _ = basisFn(s)
			directSamples[i], _ = targetFn(s)
		}
		mapped, err := m.Apply(basisSamples)
		if err != nil {
			return false
		}
		for i := range mapped {
			scale := 1 + math.Abs(directSamples[i])
			if math.Abs(mapped[i]-directSamples[i]) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPointKey(t *testing.T) {
	a := PointKey(map[string]value.Value{
		"current": value.Int(5), "feature": value.Int(12),
	})
	b := PointKey(map[string]value.Value{
		"feature": value.Int(12), "current": value.Int(5),
	})
	if a != b {
		t.Error("PointKey must be order-independent")
	}
	c := PointKey(map[string]value.Value{
		"current": value.Int(6), "feature": value.Int(12),
	})
	if a == c {
		t.Error("distinct points must get distinct keys")
	}
	if PointKey(nil) != "" {
		t.Error("empty point key should be empty")
	}
	if a != "current=5,feature=12" {
		t.Errorf("key = %q", a)
	}
}

func TestIndexPutGetAndFind(t *testing.T) {
	cfg := DefaultConfig()
	ix, err := NewIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fpA, _ := Compute(cfg, gauss(0, 1))
	fpB, _ := Compute(cfg, gauss(100, 30))
	ix.Put("capacity", "p=0", fpA)
	ix.Put("capacity", "p=1", fpB)
	if ix.Size("capacity") != 2 {
		t.Errorf("size = %d", ix.Size("capacity"))
	}
	got, ok := ix.Get("capacity", "p=0")
	if !ok || got.Outputs[0] != fpA.Outputs[0] {
		t.Error("Get failed")
	}
	if _, ok := ix.Get("capacity", "p=9"); ok {
		t.Error("missing key should not resolve")
	}
	// Replacement.
	ix.Put("capacity", "p=0", fpB)
	got, _ = ix.Get("capacity", "p=0")
	if got.Outputs[0] != fpB.Outputs[0] {
		t.Error("Put should replace")
	}
	if ix.Size("capacity") != 2 {
		t.Error("replace should not grow the index")
	}

	// Identity lookup.
	target, _ := Compute(cfg, gauss(100, 30))
	res, ok := ix.FindMapping("capacity", target)
	if !ok || res.Mapping.Kind != MappingIdentity {
		t.Fatalf("find = %+v, %v", res, ok)
	}
	st := ix.Stats()
	if st.Identity != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIndexPrefersIdentityOverAffine(t *testing.T) {
	cfg := DefaultConfig()
	ix, _ := NewIndex(cfg)
	base := gauss(0, 1)
	affineFp, _ := Compute(cfg, func(seed uint64) (float64, error) {
		x, _ := base(seed)
		return 2*x + 1, nil
	})
	exactFp, _ := Compute(cfg, base)
	ix.Put("out", "affine-basis", affineFp)
	ix.Put("out", "exact-basis", exactFp)
	target, _ := Compute(cfg, base)
	res, ok := ix.FindMapping("out", target)
	if !ok || res.Mapping.Kind != MappingIdentity || res.BasisKey != "exact-basis" {
		t.Errorf("res = %+v, ok=%v", res, ok)
	}
}

func TestIndexNoMatchCountsComputed(t *testing.T) {
	cfg := DefaultConfig()
	ix, _ := NewIndex(cfg)
	fpA, _ := Compute(cfg, gauss(0, 1))
	ix.Put("out", "a", fpA)
	unrelated, _ := Compute(cfg, func(seed uint64) (float64, error) {
		return rng.Derive(seed, "unrelated", 7).Normal(0, 1), nil
	})
	_, ok := ix.FindMapping("out", unrelated)
	if ok {
		t.Fatal("unrelated fingerprint should not match")
	}
	st := ix.Stats()
	if st.Computed != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
	ix.ResetStats()
	if ix.Stats().Total() != 0 {
		t.Error("ResetStats failed")
	}
}

func TestIndexEmptyLabel(t *testing.T) {
	cfg := DefaultConfig()
	ix, _ := NewIndex(cfg)
	fp, _ := Compute(cfg, gauss(0, 1))
	if _, ok := ix.FindMapping("nothing", fp); ok {
		t.Error("empty label should not match")
	}
	if ix.Size("nothing") != 0 {
		t.Error("size of empty label should be 0")
	}
}

func TestNewIndexValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Length = 0
	if _, err := NewIndex(bad); err == nil {
		t.Error("invalid config should error")
	}
	bad = DefaultConfig()
	bad.AffineTol = -1
	if _, err := NewIndex(bad); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestMappingKindString(t *testing.T) {
	if MappingIdentity.String() != "identity" || MappingAffine.String() != "affine" ||
		MappingNone.String() != "none" {
		t.Error("kind strings wrong")
	}
	if MappingKind(9).String() != "MappingKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestReuseStats(t *testing.T) {
	s := ReuseStats{Computed: 2, Identity: 5, Affine: 3, Rejected: 4}
	if s.Reused() != 8 || s.Total() != 10 {
		t.Errorf("reused/total = %d/%d", s.Reused(), s.Total())
	}
	if math.Abs(s.ReuseRate()-0.8) > 1e-12 {
		t.Errorf("rate = %g", s.ReuseRate())
	}
	if (ReuseStats{}).ReuseRate() != 0 {
		t.Error("empty rate should be 0")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestConfigSeedsStable(t *testing.T) {
	cfg := DefaultConfig()
	a := cfg.Seeds()
	b := cfg.Seeds()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fingerprint seeds must be stable")
		}
	}
	other := cfg
	other.SeedBase = 1
	c := other.Seeds()
	if a[0] == c[0] {
		t.Error("different bases must give different seeds")
	}
}
