package core

import (
	"math"
	"testing"

	"fuzzyprophet/internal/rng"
)

// buildChain simulates a simple capacity-style chain for each fingerprint
// seed: deterministic drift everywhere except at shock steps, where fresh
// large-variance randomness enters.
func buildChain(cfg Config, steps int, shocks map[int]bool) [][]float64 {
	seeds := cfg.Seeds()
	out := make([][]float64, steps)
	states := make([]float64, len(seeds))
	for i, s := range seeds {
		states[i] = rng.New(s).Normal(1000, 100)
	}
	for t := 0; t < steps; t++ {
		if t > 0 {
			for i, s := range seeds {
				states[i] += 5 // deterministic drift
				if shocks[t] {
					states[i] += rng.Derive(s, "shock", uint64(t)).Normal(0, 500)
				}
			}
		}
		row := make([]float64, len(states))
		copy(row, states)
		out[t] = row
	}
	return out
}

func TestAnalyzeChainFindsRegionsBetweenShocks(t *testing.T) {
	cfg := DefaultConfig()
	chain := buildChain(cfg, 20, map[int]bool{10: true})
	est, err := AnalyzeChain(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if est.StepCount != 20 {
		t.Errorf("step count = %d", est.StepCount)
	}
	if len(est.Regions) != 2 {
		t.Fatalf("regions = %+v, want 2", est.Regions)
	}
	r0, r1 := est.Regions[0], est.Regions[1]
	if r0.Start != 0 || r0.End != 9 {
		t.Errorf("region0 = [%d,%d], want [0,9]", r0.Start, r0.End)
	}
	if r1.Start != 10 || r1.End != 19 {
		t.Errorf("region1 = [%d,%d], want [10,19]", r1.Start, r1.End)
	}
	// The deterministic drift composes to x_end = x_start + 5*steps.
	if math.Abs(r0.Fit.A-1) > 1e-9 || math.Abs(r0.Fit.B-45) > 1e-6 {
		t.Errorf("region0 fit = %+v, want A=1 B=45", r0.Fit)
	}
	// 18 of 19 transitions are skippable (only the shock transition is not).
	if est.SkippableSteps() != 18 {
		t.Errorf("skippable = %d", est.SkippableSteps())
	}
	if math.Abs(est.SkipFraction()-18.0/19.0) > 1e-12 {
		t.Errorf("skip fraction = %g", est.SkipFraction())
	}
}

func TestAnalyzeChainAllDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	chain := buildChain(cfg, 10, nil)
	est, err := AnalyzeChain(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Regions) != 1 {
		t.Fatalf("regions = %+v", est.Regions)
	}
	if est.SkipFraction() != 1 {
		t.Errorf("skip fraction = %g", est.SkipFraction())
	}
}

func TestAnalyzeChainAllShocks(t *testing.T) {
	cfg := DefaultConfig()
	shocks := map[int]bool{}
	for i := 1; i < 8; i++ {
		shocks[i] = true
	}
	chain := buildChain(cfg, 8, shocks)
	est, err := AnalyzeChain(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Regions) != 0 {
		t.Errorf("regions = %+v, want none", est.Regions)
	}
	if est.SkipFraction() != 0 {
		t.Errorf("skip fraction = %g", est.SkipFraction())
	}
}

func TestEstimatorJump(t *testing.T) {
	cfg := DefaultConfig()
	chain := buildChain(cfg, 12, map[int]bool{6: true})
	est, err := AnalyzeChain(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	// Jump from the start of the first region.
	toStep, y, ok := est.Jump(0, 1000)
	if !ok {
		t.Fatal("expected a jump at step 0")
	}
	if toStep != 5 {
		t.Errorf("jump landed at %d", toStep)
	}
	if math.Abs(y-1025) > 1e-6 {
		t.Errorf("jump value = %g, want 1025", y)
	}
	// No jump from inside a region.
	if _, _, ok := est.Jump(2, 0); ok {
		t.Error("jump from inside a region should refuse")
	}
	// RegionFor covers interior steps.
	if r, ok := est.RegionFor(3); !ok || r.Start != 0 {
		t.Errorf("RegionFor(3) = %+v, %v", r, ok)
	}
	if _, ok := est.RegionFor(11); ok {
		t.Error("RegionFor past last region start should miss")
	}
}

func TestAnalyzeChainValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := AnalyzeChain(cfg, [][]float64{{1}, {2}}); err == nil {
		t.Error("width < 2 should error")
	}
	if _, err := AnalyzeChain(cfg, [][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("ragged chain should error")
	}
	est, err := AnalyzeChain(cfg, nil)
	if err != nil || est.StepCount != 0 {
		t.Errorf("empty chain: %+v, %v", est, err)
	}
	bad := cfg
	bad.Length = 1
	if _, err := AnalyzeChain(bad, [][]float64{{1, 2}}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestAnalyzeChainSingleStep(t *testing.T) {
	cfg := DefaultConfig()
	est, err := AnalyzeChain(cfg, [][]float64{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Regions) != 0 || est.SkipFraction() != 0 {
		t.Errorf("single step estimator = %+v", est)
	}
}

func TestRegionSteps(t *testing.T) {
	r := Region{Start: 3, End: 9}
	if r.Steps() != 6 {
		t.Errorf("steps = %d", r.Steps())
	}
}
