// Package core implements Fuzzy Prophet's primary contribution: the
// fingerprinting technique that identifies correlations between executions
// of a VG-Function under different parameter values and re-maps already-
// computed Monte Carlo sample sets instead of re-simulating.
//
// Following the paper (§2, "Fingerprinting"), the fingerprint of a
// parameterized stochastic function is "simply a sequence of its outputs
// under a fixed sequence of random inputs (i.e., seed of its pseudorandom
// number generator). The use of a fixed set of random seeds ensures a
// deterministic relationship between correlated outputs of the stochastic
// functions."
//
// Concretely: fingerprint(f, θ) = [f(s₁, θ), …, f(s_k, θ)] for the fixed
// seed sequence s₁…s_k. If fingerprint(f, θ_b) and fingerprint(f, θ_t) are
// elementwise equal, the two parameterizations are output-identical for
// *every* seed that exercises the same code path, so sample sets transfer
// verbatim (an identity mapping). If they are related by a near-exact
// affine map y ≈ A·x + B (fit by least squares on the k pairs), sample sets
// transfer through the map. Otherwise the point must be simulated.
//
// The package also contains the Markov-chain analyzer of §2: for step-wise
// simulations, consecutive-step fingerprints reveal regions where each step
// is an affine function of the previous one (no impactful fresh
// randomness); composing the per-step maps yields a non-Markovian estimator
// that jumps across the whole region.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/value"
)

// Config holds the fingerprinting parameters. The defaults reflect the
// DESIGN.md ablation (experiment E4).
type Config struct {
	// Length is k, the number of fixed seeds in a fingerprint.
	Length int
	// SeedBase identifies the fixed fingerprint seed sequence. All
	// fingerprints that are ever compared must share it.
	SeedBase uint64
	// IdentityTol is the relative elementwise tolerance under which two
	// fingerprints count as identical (identity mapping).
	IdentityTol float64
	// AffineTol is the maximum relative RMS residual (RelRMSE of the
	// least-squares fit) under which an affine mapping is accepted.
	AffineTol float64
}

// DefaultConfig returns the standard configuration: k=32 seeds, near-exact
// identity detection and a 2% affine residual budget.
//
// k controls the false-accept risk on event discontinuities: when a random
// event (e.g. a stochastic hardware-arrival date) splits the worlds into a
// majority and a minority mode, a mapping is wrongly accepted when all k
// probes land in the majority — probability (1-p)^k for minority fraction
// p. Experiment E4 ablates this trade-off.
func DefaultConfig() Config {
	return Config{
		Length:      32,
		SeedBase:    0x66757a7a79, // "fuzzy"
		IdentityTol: 1e-12,
		AffineTol:   0.02,
	}
}

func (c Config) validate() error {
	if c.Length < 2 {
		return fmt.Errorf("core: fingerprint length must be at least 2, got %d", c.Length)
	}
	if c.IdentityTol < 0 || c.AffineTol < 0 {
		return fmt.Errorf("core: negative tolerance")
	}
	return nil
}

// Seeds returns the fixed fingerprint seed sequence for this configuration.
func (c Config) Seeds() []uint64 {
	return rng.NewSeedSequence(c.SeedBase, "fingerprint").First(c.Length)
}

// Fingerprint is the output vector of a stochastic function under the fixed
// seed sequence.
type Fingerprint struct {
	Outputs []float64
}

// Compute evaluates f once per fixed seed (the config's own sequence) and
// returns the fingerprint.
func Compute(cfg Config, f func(seed uint64) (float64, error)) (Fingerprint, error) {
	if err := cfg.validate(); err != nil {
		return Fingerprint{}, err
	}
	return ComputeAt(cfg.Seeds(), f)
}

// ComputeAt evaluates f once per given seed and returns the fingerprint.
// The Monte Carlo executor uses the scenario's *world* seeds here, so the
// fingerprint is simply a prefix of the point's sample vector: probes then
// double as exact validation on real output worlds, computed points get
// their fingerprints for free, and re-mapped sample vectors are exact at
// every probed index.
func ComputeAt(seeds []uint64, f func(seed uint64) (float64, error)) (Fingerprint, error) {
	if len(seeds) < 2 {
		return Fingerprint{}, fmt.Errorf("core: fingerprint needs at least 2 seeds, got %d", len(seeds))
	}
	out := make([]float64, len(seeds))
	for i, s := range seeds {
		v, err := f(s)
		if err != nil {
			return Fingerprint{}, fmt.Errorf("core: fingerprint evaluation at seed %d: %w", i, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Fingerprint{}, fmt.Errorf("core: fingerprint evaluation at seed %d produced non-finite value %g", i, v)
		}
		out[i] = v
	}
	return Fingerprint{Outputs: out}, nil
}

// MappingKind classifies how one parameter point's output distribution can
// be derived from another's.
type MappingKind uint8

// Mapping kinds, from cheapest to unusable.
const (
	// MappingIdentity means the outputs are elementwise equal: samples
	// transfer verbatim.
	MappingIdentity MappingKind = iota
	// MappingAffine means samples transfer through y = A·x + B.
	MappingAffine
	// MappingNone means no acceptable mapping exists; simulate.
	MappingNone
)

func (k MappingKind) String() string {
	switch k {
	case MappingIdentity:
		return "identity"
	case MappingAffine:
		return "affine"
	case MappingNone:
		return "none"
	default:
		return fmt.Sprintf("MappingKind(%d)", uint8(k))
	}
}

// Mapping is the re-mapping decision for one (basis, target) pair.
type Mapping struct {
	Kind MappingKind
	// Fit is the affine map (identity mappings carry A=1, B=0). Undefined
	// for MappingNone.
	Fit stats.AffineFit
	// Correlation is the Pearson correlation of the two fingerprints
	// (diagnostic; drives Figure 4's intensity rendering).
	Correlation float64
}

// Apply transfers a basis sample set onto the target point. It returns an
// error for MappingNone.
func (m Mapping) Apply(samples []float64) ([]float64, error) {
	switch m.Kind {
	case MappingIdentity:
		return append([]float64(nil), samples...), nil
	case MappingAffine:
		return m.Fit.ApplySlice(samples), nil
	default:
		return nil, fmt.Errorf("core: cannot apply a %s mapping", m.Kind)
	}
}

// ApplyOne transfers a single value; it returns the input unchanged for
// identity mappings.
func (m Mapping) ApplyOne(x float64) (float64, error) {
	switch m.Kind {
	case MappingIdentity:
		return x, nil
	case MappingAffine:
		return m.Fit.Apply(x), nil
	default:
		return 0, fmt.Errorf("core: cannot apply a %s mapping", m.Kind)
	}
}

// Match decides how the target point's outputs relate to the basis point's,
// comparing their fingerprints under cfg's tolerances. Both fingerprints
// must come from the same Config.
func Match(cfg Config, basis, target Fingerprint) (Mapping, error) {
	if len(basis.Outputs) != len(target.Outputs) {
		return Mapping{Kind: MappingNone}, fmt.Errorf(
			"core: fingerprint length mismatch %d vs %d (different configs?)",
			len(basis.Outputs), len(target.Outputs))
	}
	if len(basis.Outputs) < 2 {
		return Mapping{Kind: MappingNone}, fmt.Errorf("core: fingerprints too short to match")
	}

	// Identity: elementwise equality within relative tolerance.
	identical := true
	for i := range basis.Outputs {
		b, t := basis.Outputs[i], target.Outputs[i]
		scale := math.Max(math.Abs(b), math.Abs(t))
		if math.Abs(b-t) > cfg.IdentityTol*math.Max(scale, 1) {
			identical = false
			break
		}
	}
	corr, err := stats.Correlation(basis.Outputs, target.Outputs)
	if err != nil {
		return Mapping{Kind: MappingNone}, err
	}
	if identical {
		return Mapping{
			Kind:        MappingIdentity,
			Fit:         stats.AffineFit{A: 1, B: 0},
			Correlation: 1,
		}, nil
	}

	fit, err := stats.FitAffine(basis.Outputs, target.Outputs)
	if err != nil {
		return Mapping{Kind: MappingNone}, err
	}
	if fit.RelRMSE <= cfg.AffineTol {
		return Mapping{Kind: MappingAffine, Fit: fit, Correlation: corr}, nil
	}
	return Mapping{Kind: MappingNone, Correlation: corr}, nil
}

// PointKey canonically encodes a parameter assignment so fingerprints can be
// indexed by parameter-space point. Keys are stable under map iteration
// order (names are sorted).
func PointKey(params map[string]value.Value) string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(params[n].SQLLiteral())
	}
	return sb.String()
}

// ReuseStats counts reuse decisions, the quantity the paper's offline-mode
// demo visualizes ("how Prophet avoids redundant computation by exploiting
// fingerprints").
type ReuseStats struct {
	Computed int // points simulated from scratch
	Identity int // points served by identity mappings
	Affine   int // points served by affine mappings
	Rejected int // basis candidates whose fingerprints did not match
}

// Reused returns the number of points that avoided simulation.
func (s ReuseStats) Reused() int { return s.Identity + s.Affine }

// Total returns the number of points resolved.
func (s ReuseStats) Total() int { return s.Computed + s.Reused() }

// ReuseRate returns the fraction of points served without simulation.
func (s ReuseStats) ReuseRate() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Reused()) / float64(s.Total())
}

func (s ReuseStats) String() string {
	return fmt.Sprintf("computed=%d identity=%d affine=%d rejected=%d reuse=%.1f%%",
		s.Computed, s.Identity, s.Affine, s.Rejected, 100*s.ReuseRate())
}

// Index stores fingerprints of explored parameter points, grouped by an
// arbitrary label (typically "function/output" or "output@x"), and finds
// re-mapping opportunities for new points. It is safe for concurrent use.
type Index struct {
	cfg Config

	mu      sync.RWMutex
	entries map[string][]indexEntry
	stats   ReuseStats
}

type indexEntry struct {
	key string
	fp  Fingerprint
}

// NewIndex returns an empty index using cfg's tolerances.
func NewIndex(cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Index{cfg: cfg, entries: make(map[string][]indexEntry)}, nil
}

// Config returns the index's fingerprint configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Put records the fingerprint of an explored point. Re-putting the same
// (label, key) replaces the entry.
func (ix *Index) Put(label, key string, fp Fingerprint) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	list := ix.entries[label]
	for i := range list {
		if list[i].key == key {
			list[i].fp = fp
			return
		}
	}
	ix.entries[label] = append(list, indexEntry{key: key, fp: fp})
}

// Get returns the stored fingerprint for (label, key).
func (ix *Index) Get(label, key string) (Fingerprint, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.entries[label] {
		if e.key == key {
			return e.fp, true
		}
	}
	return Fingerprint{}, false
}

// Size returns the number of stored fingerprints under label.
func (ix *Index) Size(label string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries[label])
}

// MatchResult is a successful basis lookup: which stored point to reuse and
// how.
type MatchResult struct {
	BasisKey string
	Mapping  Mapping
}

// FindMapping scans the stored basis fingerprints under label for the best
// mapping onto target: identity beats affine; among affine candidates the
// smallest residual wins. It returns false when no stored point maps within
// tolerance. Rejections are tallied in the reuse statistics.
func (ix *Index) FindMapping(label string, target Fingerprint) (MatchResult, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	best := MatchResult{Mapping: Mapping{Kind: MappingNone}}
	bestRes := math.Inf(1)
	for _, e := range ix.entries[label] {
		m, err := Match(ix.cfg, e.fp, target)
		if err != nil || m.Kind == MappingNone {
			ix.stats.Rejected++
			continue
		}
		if m.Kind == MappingIdentity {
			ix.stats.Identity++
			return MatchResult{BasisKey: e.key, Mapping: m}, true
		}
		if m.Fit.RelRMSE < bestRes {
			bestRes = m.Fit.RelRMSE
			best = MatchResult{BasisKey: e.key, Mapping: m}
		}
	}
	if best.Mapping.Kind == MappingAffine {
		ix.stats.Affine++
		return best, true
	}
	ix.stats.Computed++
	return MatchResult{}, false
}

// IndexEntry is one exported fingerprint (for persistence).
type IndexEntry struct {
	Label   string
	Key     string
	Outputs []float64
}

// Export returns a copy of every stored fingerprint.
func (ix *Index) Export() []IndexEntry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []IndexEntry
	for label, list := range ix.entries {
		for _, e := range list {
			out = append(out, IndexEntry{
				Label:   label,
				Key:     e.key,
				Outputs: append([]float64(nil), e.fp.Outputs...),
			})
		}
	}
	return out
}

// Import inserts exported fingerprints, replacing same-keyed entries.
// Entries whose length does not match the index's configuration are
// rejected.
func (ix *Index) Import(entries []IndexEntry) error {
	for _, e := range entries {
		if len(e.Outputs) < 2 {
			return fmt.Errorf("core: imported fingerprint %s/%s too short", e.Label, e.Key)
		}
		ix.Put(e.Label, e.Key, Fingerprint{Outputs: append([]float64(nil), e.Outputs...)})
	}
	return nil
}

// Stats returns a snapshot of the reuse counters.
func (ix *Index) Stats() ReuseStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.stats
}

// ResetStats zeroes the reuse counters.
func (ix *Index) ResetStats() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.stats = ReuseStats{}
}
