package core

import (
	"fmt"
	"math"

	"fuzzyprophet/internal/stats"
)

// The paper (§2): "when a simulation is Markovian (where the simulation
// consists of a series of steps, each depending on the simulation's output
// for the prior step), outputs of successive steps often remain strongly
// correlated. This is particularly true for many processes of interest that
// are built around discontinuities, with discrete events occurring at
// random points in time … Fingerprints can identify such Markovian
// dependencies, enabling automated generation of simple non-Markovian
// estimators. These estimators, valid for regions of the Markov chain,
// allow Fuzzy Prophet to skip the corresponding portions of the
// simulation."
//
// AnalyzeChain receives per-step fingerprints of a chain — outputs[t][i] is
// the chain's value at step t under fixed seed i — and finds maximal runs
// of steps where each step is an affine function of its predecessor within
// tolerance. Composing the per-step maps turns a run [start, end] into a
// single map x_start ↦ x_end: the non-Markovian estimator.

// Region is a maximal chain segment [Start, End] (step indices, End >
// Start) across which the composed affine estimator is valid.
//
// Residuals here are normalized by the chain's RMS level, not by the
// across-seed spread: an estimator predicts the next value, so what makes
// it "valid" is that its error is small relative to the magnitude of the
// quantity (the paper's capacity chain: routine failure noise of a few
// hundred cores against a ~50k-core level passes; a 12k-core purchase
// arrival at a seed-dependent week does not).
type Region struct {
	Start, End int
	// Fit maps the chain value at Start directly to the value at End.
	Fit stats.AffineFit
	// MaxStepResidual is the largest per-step level-relative residual
	// inside the region (diagnostic).
	MaxStepResidual float64
}

// Steps returns the number of simulation steps the region lets the engine
// skip (transitions strictly inside the region).
func (r Region) Steps() int { return r.End - r.Start }

// Estimator is the set of skippable regions found in one chain analysis.
type Estimator struct {
	// StepCount is the number of steps analyzed.
	StepCount int
	Regions   []Region
}

// SkippableSteps returns the total number of step transitions covered by
// regions (out of StepCount-1 total transitions).
func (e *Estimator) SkippableSteps() int {
	total := 0
	for _, r := range e.Regions {
		total += r.Steps()
	}
	return total
}

// SkipFraction returns the fraction of chain transitions the estimator can
// skip.
func (e *Estimator) SkipFraction() float64 {
	if e.StepCount <= 1 {
		return 0
	}
	return float64(e.SkippableSteps()) / float64(e.StepCount-1)
}

// RegionFor returns the region containing the given start step, if any.
func (e *Estimator) RegionFor(step int) (Region, bool) {
	for _, r := range e.Regions {
		if r.Start <= step && step < r.End {
			return r, true
		}
	}
	return Region{}, false
}

// Jump maps a chain value at fromStep to the end of the surrounding region.
// It returns (toStep, mapped value, true) when a region covers fromStep and
// (fromStep, x, false) otherwise — the caller must simulate one step.
//
// When fromStep is strictly inside a region the composed region fit cannot
// be used directly (it starts at Region.Start); Jump therefore only fires
// at exact region starts, which is how the scenario engine uses it: regions
// are aligned to the event discontinuities that break them.
func (e *Estimator) Jump(fromStep int, x float64) (int, float64, bool) {
	for _, r := range e.Regions {
		if r.Start == fromStep {
			return r.End, r.Fit.Apply(x), true
		}
	}
	return fromStep, x, false
}

// AnalyzeChain fingerprint-analyzes a step-wise simulation. outputs[t] is
// the vector of chain values at step t under the fixed fingerprint seeds;
// every step must have the same vector length ≥ 2. A transition t-1 → t is
// "deterministic given the past" when the affine fit of outputs[t] on
// outputs[t-1] has relative residual ≤ cfg.AffineTol; maximal runs of such
// transitions become Regions with composed fits.
func AnalyzeChain(cfg Config, outputs [][]float64) (*Estimator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return &Estimator{}, nil
	}
	width := len(outputs[0])
	if width < 2 {
		return nil, fmt.Errorf("core: chain fingerprints need at least 2 seeds, got %d", width)
	}
	for t, o := range outputs {
		if len(o) != width {
			return nil, fmt.Errorf("core: chain step %d has %d outputs, want %d", t, len(o), width)
		}
	}
	est := &Estimator{StepCount: len(outputs)}

	type stepFit struct {
		ok    bool
		fit   stats.AffineFit
		level float64
	}
	fits := make([]stepFit, len(outputs)) // fits[t]: map from t-1 to t
	for t := 1; t < len(outputs); t++ {
		fit, err := stats.FitAffine(outputs[t-1], outputs[t])
		if err != nil {
			return nil, err
		}
		lv := rmsLevel(outputs[t])
		fits[t] = stepFit{ok: levelResidual(fit, lv) <= cfg.AffineTol, fit: fit, level: lv}
	}

	// Collect maximal runs of OK transitions and compose their fits.
	t := 1
	for t < len(outputs) {
		if !fits[t].ok {
			t++
			continue
		}
		start := t - 1
		composed := fits[t].fit
		maxRes := levelResidual(fits[t].fit, fits[t].level)
		end := t
		for end+1 < len(outputs) && fits[end+1].ok {
			end++
			next := fits[end].fit
			// next ∘ composed: y = nA·(cA·x + cB) + nB.
			composed = stats.AffineFit{
				A: next.A * composed.A,
				B: next.A*composed.B + next.B,
			}
			if r := levelResidual(next, fits[end].level); r > maxRes {
				maxRes = r
			}
		}
		// Validate the composed map end-to-end: composition can accumulate
		// error, so refit directly and keep the better description.
		direct, err := stats.FitAffine(outputs[start], outputs[end])
		if err == nil && levelResidual(direct, rmsLevel(outputs[end])) <= cfg.AffineTol {
			composed = direct
		}
		est.Regions = append(est.Regions, Region{
			Start:           start,
			End:             end,
			Fit:             composed,
			MaxStepResidual: maxRes,
		})
		t = end + 1
	}
	return est, nil
}

// rmsLevel returns the root-mean-square magnitude of a step's outputs, the
// scale the estimator's error is judged against.
func rmsLevel(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// levelResidual normalizes a step fit's RMSE by the step's level; constant-
// zero chains fall back to the raw RMSE.
func levelResidual(fit stats.AffineFit, level float64) float64 {
	if level == 0 {
		return fit.RMSE
	}
	return fit.RMSE / level
}
