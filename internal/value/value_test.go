package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "STRING",
		KindBool:   "BOOL",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, tt := range tests {
		if tt.v.Kind() != tt.kind {
			t.Errorf("%v kind = %v, want %v", tt.v, tt.v.Kind(), tt.kind)
		}
	}
}

func TestAsInt(t *testing.T) {
	tests := []struct {
		v       Value
		want    int64
		wantErr bool
	}{
		{Int(7), 7, false},
		{Float(7.9), 7, false},
		{Float(-7.9), -7, false},
		{Bool(true), 1, false},
		{Bool(false), 0, false},
		{Str("123"), 123, false},
		{Str("abc"), 0, true},
		{Null, 0, true},
	}
	for _, tt := range tests {
		got, err := tt.v.AsInt()
		if (err != nil) != tt.wantErr {
			t.Errorf("AsInt(%v) err = %v, wantErr = %v", tt.v, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("AsInt(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	tests := []struct {
		v       Value
		want    float64
		wantErr bool
	}{
		{Int(7), 7, false},
		{Float(7.5), 7.5, false},
		{Bool(true), 1, false},
		{Str("2.25"), 2.25, false},
		{Str("zz"), 0, true},
		{Null, 0, true},
	}
	for _, tt := range tests {
		got, err := tt.v.AsFloat()
		if (err != nil) != tt.wantErr {
			t.Errorf("AsFloat(%v) err = %v, wantErr = %v", tt.v, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("AsFloat(%v) = %g, want %g", tt.v, got, tt.want)
		}
	}
}

func TestAsBool(t *testing.T) {
	tests := []struct {
		v       Value
		want    bool
		wantErr bool
	}{
		{Bool(true), true, false},
		{Bool(false), false, false},
		{Int(0), false, false},
		{Int(-3), true, false},
		{Float(0), false, false},
		{Float(0.5), true, false},
		{Str("true"), false, true},
		{Null, false, true},
	}
	for _, tt := range tests {
		got, err := tt.v.AsBool()
		if (err != nil) != tt.wantErr {
			t.Errorf("AsBool(%v) err = %v, wantErr = %v", tt.v, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("AsBool(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-12), "-12"},
		{Float(2.5), "2.5"},
		{Str("hello"), "hello"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := Str("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Int(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestEqualNumericWidening(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if !Null.Equal(Null) {
		t.Error("Null should equal Null")
	}
	if Null.Equal(Int(0)) {
		t.Error("Null should not equal Int(0)")
	}
	if Str("a").Equal(Bool(true)) {
		t.Error("mismatched kinds should not be equal")
	}
	if !Str("a").Equal(Str("a")) {
		t.Error("equal strings must be Equal")
	}
	if !Bool(true).Equal(Bool(true)) {
		t.Error("equal bools must be Equal")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Float(2.5), Int(2), 1, false},
		{Null, Int(0), -1, false},
		{Int(0), Null, 1, false},
		{Null, Null, 0, false},
		{Str("a"), Str("b"), -1, false},
		{Str("b"), Str("a"), 1, false},
		{Str("a"), Str("a"), 0, false},
		{Bool(false), Bool(true), -1, false},
		{Bool(true), Bool(false), 1, false},
		{Bool(true), Bool(true), 0, false},
		{Str("a"), Int(1), 0, true},
		{Bool(true), Str("x"), 0, true},
	}
	for _, tt := range tests {
		got, err := Compare(tt.a, tt.b)
		if (err != nil) != tt.wantErr {
			t.Errorf("Compare(%v,%v) err = %v, wantErr %v", tt.a, tt.b, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	mustInt := func(v Value, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		n, err := v.AsInt()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	mustFloat := func(v Value, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		f, err := v.AsFloat()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if got := mustInt(Add(Int(2), Int(3))); got != 5 {
		t.Errorf("2+3 = %d", got)
	}
	if got := mustInt(Sub(Int(2), Int(3))); got != -1 {
		t.Errorf("2-3 = %d", got)
	}
	if got := mustInt(Mul(Int(2), Int(3))); got != 6 {
		t.Errorf("2*3 = %d", got)
	}
	if got := mustFloat(Div(Int(1), Int(2))); got != 0.5 {
		t.Errorf("1/2 = %g, want real division", got)
	}
	if got := mustInt(Mod(Int(7), Int(3))); got != 1 {
		t.Errorf("7%%3 = %d", got)
	}
	if got := mustFloat(Add(Int(2), Float(0.5))); got != 2.5 {
		t.Errorf("2+0.5 = %g", got)
	}
	if got := mustFloat(Mod(Float(7.5), Float(2))); got != 1.5 {
		t.Errorf("7.5 mod 2 = %g", got)
	}
	// Int kinds stay Int for + - * %.
	v, _ := Add(Int(1), Int(1))
	if v.Kind() != KindInt {
		t.Errorf("Int+Int kind = %v", v.Kind())
	}
	v, _ = Div(Int(4), Int(2))
	if v.Kind() != KindFloat {
		t.Errorf("Int/Int kind = %v, division is always real", v.Kind())
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, f := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod} {
		v, err := f(Null, Int(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL, nil", v, err)
		}
		v, err = f(Int(1), Null)
		if err != nil || !v.IsNull() {
			t.Errorf("op(1, NULL) = %v, %v; want NULL, nil", v, err)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("string + int should error")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("modulo by zero should error")
	}
	if _, err := Mod(Float(1), Float(0)); err == nil {
		t.Error("float modulo by zero should error")
	}
}

func TestNeg(t *testing.T) {
	v, err := Neg(Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != -5 {
		t.Errorf("-5 = %d", n)
	}
	v, err = Neg(Float(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != -2.5 {
		t.Errorf("-2.5 = %g", f)
	}
	v, err = Neg(Null)
	if err != nil || !v.IsNull() {
		t.Errorf("Neg(NULL) = %v, %v", v, err)
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Error("Neg(string) should error")
	}
}

func TestKeyGroupsNumericsTogether(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3) must share a group key")
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("distinct numerics must not share a key")
	}
	if Str("3").Key() == Int(3).Key() {
		t.Error("string and numeric must not share a key")
	}
	if Null.Key() != Null.Key() {
		t.Error("NULL keys must match")
	}
	if Bool(true).Key() == Bool(false).Key() {
		t.Error("bool keys must differ")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{Bool(true), true},
		{Bool(false), false},
		{Int(1), true},
		{Int(0), false},
		{Float(0.1), true},
		{Str("anything"), false},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("Truthy(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

// Property: Add is commutative over numerics.
func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		x, err1 := Add(Float(a), Float(b))
		y, err2 := Add(Float(b), Float(a))
		if err1 != nil || err2 != nil {
			return false
		}
		xf, _ := x.AsFloat()
		yf, _ := y.AsFloat()
		return xf == yf || (math.IsNaN(xf) && math.IsNaN(yf))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric over ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(Int(a), Int(b))
		y, err2 := Compare(Int(b), Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neg is an involution over ints.
func TestQuickNegInvolution(t *testing.T) {
	f := func(a int64) bool {
		v, err := Neg(Int(a))
		if err != nil {
			return false
		}
		w, err := Neg(v)
		if err != nil {
			return false
		}
		n, _ := w.AsInt()
		return n == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-trip through Key groups exactly numerically-equal values.
func TestQuickKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		sameKey := Int(a).Key() == Int(b).Key()
		return sameKey == Int(a).Equal(Int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
