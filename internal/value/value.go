// Package value implements the dynamic value system shared by the Fuzzy
// Prophet SQL dialect parser and the in-memory relational engine.
//
// A Value is a tagged union over the SQL types used by Fuzzy Prophet
// scenarios: NULL, INT (64-bit), FLOAT (64-bit), STRING and BOOL. The
// package defines the coercion, comparison and arithmetic rules the engine
// relies on; they follow T-SQL conventions where that matters (NULL
// propagation, numeric widening from INT to FLOAT) and are deliberately
// small everywhere else.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported runtime kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable dynamically-typed SQL value.
//
// The zero Value is NULL, which keeps freshly allocated rows useful without
// initialization.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the NULL value.
var Null = Value{}

// Int returns an INT value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a STRING value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether v is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsInt returns the value as an int64. FLOATs are truncated toward zero,
// BOOLs map to 0/1. It returns an error for NULL and STRING values that do
// not parse as integers.
func (v Value) AsInt() (int64, error) {
	switch v.kind {
	case KindInt:
		return v.i, nil
	case KindFloat:
		return int64(v.f), nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case KindString:
		n, err := strconv.ParseInt(v.s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("value: cannot convert %q to INT", v.s)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("value: cannot convert %s to INT", v.kind)
	}
}

// AsFloat returns the value as a float64. It returns an error for NULL and
// STRING values that do not parse as numbers.
func (v Value) AsFloat() (float64, error) {
	switch v.kind {
	case KindInt:
		return float64(v.i), nil
	case KindFloat:
		return v.f, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case KindString:
		f, err := strconv.ParseFloat(v.s, 64)
		if err != nil {
			return 0, fmt.Errorf("value: cannot convert %q to FLOAT", v.s)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("value: cannot convert %s to FLOAT", v.kind)
	}
}

// AsBool returns the value as a bool. Numeric values are true when nonzero.
func (v Value) AsBool() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindInt:
		return v.i != 0, nil
	case KindFloat:
		return v.f != 0, nil
	default:
		return false, fmt.Errorf("value: cannot convert %s to BOOL", v.kind)
	}
}

// AsString returns the value rendered as a string; NULL renders as "NULL".
func (v Value) AsString() string { return v.String() }

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// SQLLiteral renders the value as a literal the parser would accept
// (strings quoted, NULL as NULL).
func (v Value) SQLLiteral() string {
	if v.kind == KindString {
		return "'" + escapeSingle(v.s) + "'"
	}
	return v.String()
}

func escapeSingle(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// Equal reports deep equality with numeric widening: Int(3) equals
// Float(3.0). NULL equals only NULL (this is Go-level equality for tests and
// map keys, not three-valued SQL equality; see Compare for that).
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values. It returns -1, 0 or +1; NULL sorts before
// everything, numerics compare by widening, strings lexicographically and
// bools false<true. Comparing a non-NULL non-numeric against a numeric is an
// error.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("value: cannot compare %s values", a.kind)
	}
}

// arith applies a binary arithmetic operator with SQL NULL propagation and
// INT→FLOAT widening. Integer arithmetic stays integral except for division,
// which follows the scenario language's convention of real division.
func arith(a, b Value, op byte) (Value, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("value: arithmetic %c needs numeric operands, got %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt && op != '/' {
		switch op {
		case '+':
			return Int(a.i + b.i), nil
		case '-':
			return Int(a.i - b.i), nil
		case '*':
			return Int(a.i * b.i), nil
		case '%':
			if b.i == 0 {
				return Null, fmt.Errorf("value: modulo by zero")
			}
			return Int(a.i % b.i), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return Float(af / bf), nil
	case '%':
		if bf == 0 {
			return Null, fmt.Errorf("value: modulo by zero")
		}
		return Float(math.Mod(af, bf)), nil
	default:
		return Null, fmt.Errorf("value: unknown arithmetic operator %c", op)
	}
}

// Add returns a+b with NULL propagation.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b with NULL propagation.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b with NULL propagation.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b (always real division) with NULL propagation.
func Div(a, b Value) (Value, error) { return arith(a, b, '/') }

// Mod returns a%b with NULL propagation.
func Mod(a, b Value) (Value, error) { return arith(a, b, '%') }

// Neg returns -a with NULL propagation.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", a.kind)
	}
}

// Key returns a comparable representation suitable for use as a Go map key
// in GROUP BY hashing. Numerically equal INT and FLOAT values share a key.
func (v Value) Key() Key {
	switch v.kind {
	case KindNull:
		return Key{kind: KindNull}
	case KindInt:
		return Key{kind: KindFloat, f: float64(v.i)}
	case KindFloat:
		return Key{kind: KindFloat, f: v.f}
	case KindString:
		return Key{kind: KindString, s: v.s}
	case KindBool:
		return Key{kind: KindBool, b: v.b}
	default:
		return Key{kind: KindNull}
	}
}

// Key is a comparable (==) projection of a Value.
type Key struct {
	kind Kind
	f    float64
	s    string
	b    bool
}

// AppendKey appends v's canonical key encoding to dst and returns the
// extended slice. The encoding is shared between the row engine's boxed
// KeyString and the columnar engine's unboxed key builders (see
// sqlengine.Column), so GROUP BY and DISTINCT group identically on both
// paths: numerically equal INT and FLOAT values share an encoding, strings
// are length-prefixed so embedded separators cannot collide.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n', ';')
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		dst = append(dst, 'f')
		dst = strconv.AppendFloat(dst, f, 'b', -1, 64)
		return append(dst, ';')
	case KindString:
		return AppendStringKey(dst, v.s)
	case KindBool:
		if v.b {
			return append(dst, 'b', '1', ';')
		}
		return append(dst, 'b', '0', ';')
	default:
		return dst
	}
}

// AppendFloatKey appends the key encoding of a non-NULL numeric value.
func AppendFloatKey(dst []byte, f float64) []byte {
	dst = append(dst, 'f')
	dst = strconv.AppendFloat(dst, f, 'b', -1, 64)
	return append(dst, ';')
}

// AppendStringKey appends the key encoding of a non-NULL string value.
func AppendStringKey(dst []byte, s string) []byte {
	dst = append(dst, 's')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	dst = append(dst, s...)
	return append(dst, ';')
}

// AppendBoolKey appends the key encoding of a non-NULL bool value.
func AppendBoolKey(dst []byte, b bool) []byte {
	if b {
		return append(dst, 'b', '1', ';')
	}
	return append(dst, 'b', '0', ';')
}

// AppendNullKey appends the key encoding of NULL.
func AppendNullKey(dst []byte) []byte { return append(dst, 'n', ';') }

// KeyString returns a canonical string key for a tuple of values, suitable
// as a composite GROUP BY key. See AppendKey for the encoding.
func KeyString(vs []Value) string {
	var sb []byte
	for _, v := range vs {
		sb = AppendKey(sb, v)
	}
	return string(sb)
}

// Truthy is a convenience that treats NULL as false (SQL WHERE semantics).
func (v Value) Truthy() bool {
	if v.kind == KindNull {
		return false
	}
	b, err := v.AsBool()
	if err != nil {
		return false
	}
	return b
}
