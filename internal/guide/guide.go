// Package guide implements Fuzzy Prophet's Guide component (paper §2,
// architecture cycle step 1): it "directs scenario evaluation by producing
// a sequence of instances, each representing a concrete valuation for each
// parameter and model variable in the scenario", and accepts result
// feedback to steer its sampling strategy.
//
// The package models the discrete parameter space declared by
// DECLARE PARAMETER statements and provides the exploration strategies the
// two modes use: exhaustive sweeps (offline), axis sweeps (the online
// graph), neighborhood prefetch (the online mode's "proactively being
// explored anticipating their future usage") and adaptive refinement
// (uncertainty-directed re-sampling).
package guide

import (
	"container/heap"
	"fmt"

	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/value"
)

// ParamDef is one declared parameter: a name plus its ordered discrete
// values.
type ParamDef struct {
	Name   string
	Values []value.Value
}

// Space is the full discrete parameter space, in declaration order.
type Space struct {
	Params []ParamDef
	byName map[string]int
}

// NewSpace builds a Space, validating that names are unique and every
// parameter has at least one value.
func NewSpace(params []ParamDef) (*Space, error) {
	s := &Space{Params: params, byName: make(map[string]int, len(params))}
	for i, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("guide: parameter %d has no name", i)
		}
		if _, dup := s.byName[p.Name]; dup {
			return nil, fmt.Errorf("guide: duplicate parameter @%s", p.Name)
		}
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("guide: parameter @%s has no values", p.Name)
		}
		s.byName[p.Name] = i
	}
	return s, nil
}

// Size returns the total number of grid points.
func (s *Space) Size() int {
	if len(s.Params) == 0 {
		return 0
	}
	n := 1
	for _, p := range s.Params {
		n *= len(p.Values)
	}
	return n
}

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Point is a concrete valuation of every parameter (the paper's
// "instance"; a possible-world seed completes it into a possible world).
type Point map[string]value.Value

// At returns the point for the given per-parameter value indices.
func (s *Space) At(indices []int) (Point, error) {
	if len(indices) != len(s.Params) {
		return nil, fmt.Errorf("guide: got %d indices for %d parameters", len(indices), len(s.Params))
	}
	p := make(Point, len(s.Params))
	for i, def := range s.Params {
		if indices[i] < 0 || indices[i] >= len(def.Values) {
			return nil, fmt.Errorf("guide: index %d out of range for @%s", indices[i], def.Name)
		}
		p[def.Name] = def.Values[indices[i]]
	}
	return p, nil
}

// IndexOfValue returns the position of v in the named parameter's value
// list, or -1.
func (s *Space) IndexOfValue(name string, v value.Value) int {
	i := s.Index(name)
	if i < 0 {
		return -1
	}
	for j, pv := range s.Params[i].Values {
		if pv.Equal(v) {
			return j
		}
	}
	return -1
}

// Sweep returns the points obtained by varying the named axis over all its
// values while pinning every other parameter to the values in pinned. It is
// how the online mode renders `GRAPH OVER @axis`.
func (s *Space) Sweep(axis string, pinned Point) ([]Point, error) {
	ai := s.Index(axis)
	if ai < 0 {
		return nil, fmt.Errorf("guide: unknown sweep axis @%s", axis)
	}
	for _, def := range s.Params {
		if def.Name == axis {
			continue
		}
		if _, ok := pinned[def.Name]; !ok {
			return nil, fmt.Errorf("guide: sweep is missing a pin for @%s", def.Name)
		}
	}
	out := make([]Point, 0, len(s.Params[ai].Values))
	for _, v := range s.Params[ai].Values {
		p := make(Point, len(s.Params))
		for name, pv := range pinned {
			if s.Index(name) < 0 {
				return nil, fmt.Errorf("guide: pin for undeclared parameter @%s", name)
			}
			p[name] = pv
		}
		p[axis] = v
		out = append(out, p)
	}
	return out, nil
}

// Strategy produces a sequence of points to evaluate.
type Strategy interface {
	// Next returns the next point; ok is false when the strategy is
	// exhausted.
	Next() (p Point, ok bool)
}

// Exhaustive enumerates the full grid in odometer order (last declared
// parameter varies fastest), matching the offline mode's full-space sweep.
type Exhaustive struct {
	space   *Space
	indices []int
	done    bool
}

// NewExhaustive returns a full-grid strategy.
func NewExhaustive(space *Space) *Exhaustive {
	return &Exhaustive{space: space, indices: make([]int, len(space.Params)), done: space.Size() == 0}
}

// Next implements Strategy.
func (e *Exhaustive) Next() (Point, bool) {
	if e.done {
		return nil, false
	}
	p, err := e.space.At(e.indices)
	if err != nil {
		return nil, false
	}
	// Advance the odometer.
	for i := len(e.indices) - 1; i >= 0; i-- {
		e.indices[i]++
		if e.indices[i] < len(e.space.Params[i].Values) {
			return p, true
		}
		e.indices[i] = 0
	}
	e.done = true
	return p, true
}

// Fixed replays a predetermined list of points.
type Fixed struct {
	points []Point
	pos    int
}

// NewFixed returns a strategy over the given points.
func NewFixed(points []Point) *Fixed { return &Fixed{points: points} }

// Next implements Strategy.
func (f *Fixed) Next() (Point, bool) {
	if f.pos >= len(f.points) {
		return nil, false
	}
	p := f.points[f.pos]
	f.pos++
	return p, true
}

// Random samples grid points uniformly without replacement, for budgeted
// exploration of very large spaces.
type Random struct {
	space *Space
	perm  []int
	pos   int
}

// NewRandom returns a random-order strategy over at most budget points
// (budget <= 0 means the whole grid), using a deterministic seed.
func NewRandom(space *Space, budget int, seed uint64) *Random {
	n := space.Size()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	src := rng.New(seed)
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if budget > 0 && budget < n {
		perm = perm[:budget]
	}
	return &Random{space: space, perm: perm}
}

// Next implements Strategy.
func (r *Random) Next() (Point, bool) {
	if r.pos >= len(r.perm) {
		return nil, false
	}
	flat := r.perm[r.pos]
	r.pos++
	indices := make([]int, len(r.space.Params))
	for i := len(r.space.Params) - 1; i >= 0; i-- {
		n := len(r.space.Params[i].Values)
		indices[i] = flat % n
		flat /= n
	}
	p, err := r.space.At(indices)
	if err != nil {
		return nil, false
	}
	return p, true
}

// Neighborhood explores outward from a focus point in breadth-first rings:
// first the focus, then all points one index step away in a single
// dimension, then two steps, and so on up to radius. The online mode uses
// it to prefetch the points a user is most likely to slide to next.
type Neighborhood struct {
	queue []Point
	pos   int
}

// NewNeighborhood returns the BFS-prefetch strategy around focus. Axes
// lists the parameters allowed to move (nil means all).
func NewNeighborhood(space *Space, focus Point, radius int, axes []string) (*Neighborhood, error) {
	focusIdx := make([]int, len(space.Params))
	for i, def := range space.Params {
		v, ok := focus[def.Name]
		if !ok {
			return nil, fmt.Errorf("guide: focus is missing @%s", def.Name)
		}
		j := space.IndexOfValue(def.Name, v)
		if j < 0 {
			return nil, fmt.Errorf("guide: focus value %v not in @%s's space", v, def.Name)
		}
		focusIdx[i] = j
	}
	movable := make(map[int]bool)
	if axes == nil {
		for i := range space.Params {
			movable[i] = true
		}
	} else {
		for _, a := range axes {
			i := space.Index(a)
			if i < 0 {
				return nil, fmt.Errorf("guide: unknown prefetch axis @%s", a)
			}
			movable[i] = true
		}
	}
	n := &Neighborhood{}
	seen := map[string]bool{}
	push := func(indices []int) {
		key := fmt.Sprint(indices)
		if seen[key] {
			return
		}
		seen[key] = true
		p, err := space.At(indices)
		if err == nil {
			n.queue = append(n.queue, p)
		}
	}
	push(focusIdx)
	for r := 1; r <= radius; r++ {
		for dim := range space.Params {
			if !movable[dim] {
				continue
			}
			for _, d := range []int{-r, r} {
				idx := append([]int(nil), focusIdx...)
				idx[dim] += d
				if idx[dim] >= 0 && idx[dim] < len(space.Params[dim].Values) {
					push(idx)
				}
			}
		}
	}
	return n, nil
}

// Next implements Strategy.
func (n *Neighborhood) Next() (Point, bool) {
	if n.pos >= len(n.queue) {
		return nil, false
	}
	p := n.queue[n.pos]
	n.pos++
	return p, true
}

// Adaptive is the feedback-driven strategy: candidates are prioritized by a
// caller-reported urgency (typically the CI half-width of the point's
// estimate), so the least-converged points are revisited first. It realizes
// the architecture's "results are fed back to the Guide to direct its
// sampling strategy".
type Adaptive struct {
	h pointHeap
}

// NewAdaptive returns an empty adaptive strategy; seed it with Report
// calls.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Report (re-)enqueues a point with the given urgency. Higher urgency pops
// first.
func (a *Adaptive) Report(p Point, urgency float64) {
	heap.Push(&a.h, prioritizedPoint{point: p, urgency: urgency})
}

// Next implements Strategy, popping the highest-urgency point.
func (a *Adaptive) Next() (Point, bool) {
	if a.h.Len() == 0 {
		return nil, false
	}
	pp := heap.Pop(&a.h).(prioritizedPoint)
	return pp.point, true
}

// Pending returns the number of queued points.
func (a *Adaptive) Pending() int { return a.h.Len() }

type prioritizedPoint struct {
	point   Point
	urgency float64
}

type pointHeap []prioritizedPoint

func (h pointHeap) Len() int            { return len(h) }
func (h pointHeap) Less(i, j int) bool  { return h[i].urgency > h[j].urgency }
func (h pointHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pointHeap) Push(x interface{}) { *h = append(*h, x.(prioritizedPoint)) }
func (h *pointHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Collect drains a strategy into a slice (convenience for tests and the
// offline mode).
func Collect(s Strategy) []Point {
	var out []Point
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}
