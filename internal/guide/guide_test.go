package guide

import (
	"testing"

	"fuzzyprophet/internal/value"
)

func ints(vals ...int64) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = value.Int(v)
	}
	return out
}

func demoSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]ParamDef{
		{Name: "a", Values: ints(0, 1, 2)},
		{Name: "b", Values: ints(10, 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace([]ParamDef{{Name: "", Values: ints(1)}}); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewSpace([]ParamDef{{Name: "a", Values: ints(1)}, {Name: "a", Values: ints(2)}}); err == nil {
		t.Error("duplicate name should error")
	}
	if _, err := NewSpace([]ParamDef{{Name: "a"}}); err == nil {
		t.Error("no values should error")
	}
}

func TestSpaceSizeAndIndex(t *testing.T) {
	s := demoSpace(t)
	if s.Size() != 6 {
		t.Errorf("size = %d", s.Size())
	}
	if s.Index("a") != 0 || s.Index("b") != 1 || s.Index("z") != -1 {
		t.Error("Index wrong")
	}
	empty, _ := NewSpace(nil)
	if empty.Size() != 0 {
		t.Error("empty space size should be 0")
	}
}

func TestSpaceAt(t *testing.T) {
	s := demoSpace(t)
	p, err := s.At([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p["a"].Equal(value.Int(2)) || !p["b"].Equal(value.Int(20)) {
		t.Errorf("point = %v", p)
	}
	if _, err := s.At([]int{0}); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := s.At([]int{5, 0}); err == nil {
		t.Error("out of range should error")
	}
}

func TestIndexOfValue(t *testing.T) {
	s := demoSpace(t)
	if s.IndexOfValue("b", value.Int(20)) != 1 {
		t.Error("IndexOfValue wrong")
	}
	if s.IndexOfValue("b", value.Int(99)) != -1 {
		t.Error("missing value should be -1")
	}
	if s.IndexOfValue("z", value.Int(0)) != -1 {
		t.Error("missing param should be -1")
	}
}

func TestSweep(t *testing.T) {
	s := demoSpace(t)
	pts, err := s.Sweep("a", Point{"b": value.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	for i, p := range pts {
		if !p["a"].Equal(value.Int(int64(i))) || !p["b"].Equal(value.Int(10)) {
			t.Errorf("sweep[%d] = %v", i, p)
		}
	}
	if _, err := s.Sweep("z", Point{}); err == nil {
		t.Error("unknown axis should error")
	}
	if _, err := s.Sweep("a", Point{}); err == nil {
		t.Error("missing pin should error")
	}
	if _, err := s.Sweep("a", Point{"b": value.Int(10), "zzz": value.Int(1)}); err == nil {
		t.Error("pin for undeclared parameter should error")
	}
}

func TestExhaustiveCoversGridOnce(t *testing.T) {
	s := demoSpace(t)
	pts := Collect(NewExhaustive(s))
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		key := p["a"].String() + "," + p["b"].String()
		if seen[key] {
			t.Fatalf("duplicate point %s", key)
		}
		seen[key] = true
	}
	// Odometer order: last parameter varies fastest.
	if !pts[0]["b"].Equal(value.Int(10)) || !pts[1]["b"].Equal(value.Int(20)) {
		t.Errorf("order wrong: %v %v", pts[0], pts[1])
	}
	if !pts[0]["a"].Equal(value.Int(0)) || !pts[2]["a"].Equal(value.Int(1)) {
		t.Errorf("order wrong: %v %v", pts[0], pts[2])
	}
}

func TestExhaustiveEmptySpace(t *testing.T) {
	empty, _ := NewSpace(nil)
	if pts := Collect(NewExhaustive(empty)); len(pts) != 0 {
		t.Errorf("empty space points = %d", len(pts))
	}
}

func TestFixed(t *testing.T) {
	pts := []Point{{"a": value.Int(1)}, {"a": value.Int(2)}}
	f := NewFixed(pts)
	got := Collect(f)
	if len(got) != 2 || !got[0]["a"].Equal(value.Int(1)) {
		t.Errorf("fixed = %v", got)
	}
	if _, ok := f.Next(); ok {
		t.Error("exhausted Fixed should return false")
	}
}

func TestRandomCoversWithoutReplacement(t *testing.T) {
	s := demoSpace(t)
	pts := Collect(NewRandom(s, 0, 42))
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		key := p["a"].String() + "," + p["b"].String()
		if seen[key] {
			t.Fatalf("duplicate point %s", key)
		}
		seen[key] = true
	}
}

func TestRandomBudgetAndDeterminism(t *testing.T) {
	s := demoSpace(t)
	a := Collect(NewRandom(s, 3, 7))
	b := Collect(NewRandom(s, 3, 7))
	if len(a) != 3 {
		t.Fatalf("budget ignored: %d", len(a))
	}
	for i := range a {
		if !a[i]["a"].Equal(b[i]["a"]) || !a[i]["b"].Equal(b[i]["b"]) {
			t.Fatal("random strategy not deterministic in its seed")
		}
	}
}

func TestNeighborhoodRings(t *testing.T) {
	s, err := NewSpace([]ParamDef{
		{Name: "x", Values: ints(0, 1, 2, 3, 4)},
		{Name: "y", Values: ints(0, 1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	focus := Point{"x": value.Int(2), "y": value.Int(1)}
	n, err := NewNeighborhood(s, focus, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := Collect(n)
	// Focus + 2 x-neighbors + 2 y-neighbors.
	if len(pts) != 5 {
		t.Fatalf("ring points = %d: %v", len(pts), pts)
	}
	if !pts[0]["x"].Equal(value.Int(2)) || !pts[0]["y"].Equal(value.Int(1)) {
		t.Error("focus must come first")
	}
}

func TestNeighborhoodEdgesAndAxes(t *testing.T) {
	s := demoSpace(t)
	// Focus at a corner: out-of-range neighbors are dropped.
	focus := Point{"a": value.Int(0), "b": value.Int(10)}
	n, err := NewNeighborhood(s, focus, 1, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	pts := Collect(n)
	if len(pts) != 2 { // focus + a=1
		t.Fatalf("points = %v", pts)
	}
	if _, err := NewNeighborhood(s, Point{"a": value.Int(0)}, 1, nil); err == nil {
		t.Error("missing focus coordinate should error")
	}
	if _, err := NewNeighborhood(s, Point{"a": value.Int(9), "b": value.Int(10)}, 1, nil); err == nil {
		t.Error("off-grid focus should error")
	}
	if _, err := NewNeighborhood(s, focus, 1, []string{"zzz"}); err == nil {
		t.Error("unknown axis should error")
	}
}

func TestAdaptivePriorityOrder(t *testing.T) {
	a := NewAdaptive()
	if _, ok := a.Next(); ok {
		t.Error("empty adaptive should be exhausted")
	}
	a.Report(Point{"p": value.Int(1)}, 0.5)
	a.Report(Point{"p": value.Int(2)}, 2.0)
	a.Report(Point{"p": value.Int(3)}, 1.0)
	if a.Pending() != 3 {
		t.Errorf("pending = %d", a.Pending())
	}
	want := []int64{2, 3, 1}
	for i, w := range want {
		p, ok := a.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if !p["p"].Equal(value.Int(w)) {
			t.Errorf("pop %d = %v, want %d", i, p["p"], w)
		}
	}
}
