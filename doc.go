// Package fuzzyprophet is a probabilistic database tool for constructing,
// simulating and analyzing business scenarios with uncertain data — a Go
// reproduction of "Fuzzy Prophet: Parameter Exploration in Uncertain
// Enterprise Scenarios" (Kennedy, Lee, Loboz, Smyl, Nath; SIGMOD 2011).
//
// Scenarios are written in a Transact-SQL dialect with probabilistic
// extensions (see docs/SCENARIO_LANGUAGE.md for the full reference and
// Figure 2 of the paper, reproduced in the README). Stochastic inputs come
// from black-box VG-Functions; Monte Carlo simulation turns a scenario plus
// a parameter point into output distributions. The system's core
// contribution is *fingerprinting*: parameter points whose VG-Function
// outputs are correlated are detected by comparing output vectors under a
// fixed seed sequence, and already-computed sample sets are re-mapped onto
// new points instead of re-simulated. The effect is interactive-speed
// what-if exploration (online mode) and much cheaper full-space
// optimization (offline mode).
//
// # The shape of the API
//
// A System owns the VG-Function registry (New registers the standard
// distributions; WithDemoModels adds the paper's demonstration models;
// RegisterVG adds your own). System.Compile turns scenario text into an
// immutable Scenario, which offers four evaluation surfaces:
//
//   - Scenario.Evaluate: one parameter point → per-column distribution
//     summaries (mean, stddev, quantiles, CI).
//   - Scenario.EvaluateBatch: many points through one shared reuse engine,
//     so fingerprint remapping amortizes across the batch.
//   - Scenario.OpenSession: the online mode — sliders plus a live graph
//     (Session.SetParam, Session.Render) with reuse across adjustments.
//   - Scenario.Optimize: the offline mode — a full parameter-space sweep
//     with the OPTIMIZE statement's feasibility constraint and
//     lexicographic goals.
//
// Every simulation entry point takes a context.Context first and honors
// cancellation within one world-batch, so a slider adjustment can abort the
// render it supersedes and Ctrl-C stops an offline sweep in milliseconds. A
// Session is safe for concurrent use: sliders are mutex-guarded and renders
// work from a snapshot of the positions they started with.
//
// Under the hood the per-point render executes the Query Generator's pure
// TSQL on a vectorized columnar engine (internal/sqlengine): Monte Carlo
// worlds are laid out as typed column vectors and aggregated in tight
// unboxed loops. Each compiled Scenario additionally carries a compiled
// execution plan — pre-bound operator kernels over pooled, reusable column
// buffers — shared by all of its Sessions, Evaluate/EvaluateBatch calls and
// Optimize sweeps. Plan caching is entirely transparent to this API: it is
// keyed by Scenario.Fingerprint, so compiling an identical script (or
// re-registering one with fpserver) reuses the warmed plan automatically,
// and no public type or call changes. See docs/ARCHITECTURE.md ("Plan
// compilation & buffer reuse") for the design, and the README's Performance
// section for the measured speedups and allocation counts.
//
// See the examples directory for complete programs, and cmd/fuzzyprophet
// and cmd/fpserver for the CLI and the multi-tenant HTTP service.
package fuzzyprophet
