package fuzzyprophet_test

import (
	"context"
	"fmt"
	"log"

	fp "fuzzyprophet"
)

// Example compiles the paper's Figure 2 capacity-planning scenario and
// evaluates one parameter point: demand and capacity are stochastic
// VG-Function outputs, and the overload indicator's expectation is the
// probability the fleet runs out of cores that week. Simulation is
// deterministic in the seed base, so the printed numbers are stable.
func Example() {
	// The calibration starts demand high enough that a no-purchase plan is
	// visibly risky by mid-year.
	sys, err := fp.New(fp.WithCalibratedDemoModels(fp.Calibration{DemandBase: 58000}))
	if err != nil {
		log.Fatal(err)
	}
	scn, err := sys.Compile(`
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12, 36, 44);

SELECT DemandModel(@current, @feature)              AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END   AS overload
INTO results;

GRAPH OVER @current EXPECT overload WITH bold red;
`)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := scn.Evaluate(context.Background(), map[string]any{
		"current": 30, "purchase1": 0, "purchase2": 0, "feature": 12,
	}, fp.WithWorlds(500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worlds simulated:    %d\n", summary["overload"].N)
	fmt.Printf("P(overload) week 30: %.3f\n", summary["overload"].Mean)
	fmt.Printf("mean demand:         %.0f cores\n", summary["demand"].Mean)
	// Output:
	// worlds simulated:    500
	// P(overload) week 30: 0.304
	// mean demand:         70963 cores
}
