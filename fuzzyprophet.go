package fuzzyprophet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/online"
	"fuzzyprophet/internal/optimize"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
)

// System owns a VG-Function registry and compiles scenarios against it.
type System struct {
	registry *vg.Registry
}

// Option configures a System.
type Option func(*System) error

// WithDemoModels registers the paper's demonstration models (DemandModel,
// CapacityModel) and the pricing models (RevenueModel, UnitsModel) used by
// the examples.
func WithDemoModels() Option {
	return func(s *System) error {
		return models.RegisterDefaults(s.registry)
	}
}

// Calibration overrides the demo models' headline constants — the
// simulation characteristics the paper's §3.3 demo invites guests to vary
// ("starting the simulation with a different initial capacity or a
// different user growth"). Zero fields keep the defaults.
type Calibration struct {
	// InitialCapacity is the fleet's week-0 capacity in cores.
	InitialCapacity float64
	// BatchCores is the capacity one hardware purchase adds.
	BatchCores float64
	// DemandBase is the expected demand at week 0.
	DemandBase float64
	// DemandGrowth is the expected weekly demand increase.
	DemandGrowth float64
	// FeatureBoost is the fully-ramped demand added by the feature release.
	FeatureBoost float64
}

// WithCalibratedDemoModels registers the demonstration models with the
// given overrides instead of the default calibration.
func WithCalibratedDemoModels(c Calibration) Option {
	return func(s *System) error {
		dc := models.DefaultDemandConfig()
		cc := models.DefaultCapacityConfig()
		if c.InitialCapacity > 0 {
			cc.Initial = c.InitialCapacity
		}
		if c.BatchCores > 0 {
			cc.BatchCores = c.BatchCores
		}
		if c.DemandBase > 0 {
			dc.Base = c.DemandBase
		}
		if c.DemandGrowth > 0 {
			dc.Growth = c.DemandGrowth
		}
		if c.FeatureBoost > 0 {
			dc.FeatureBoost = c.FeatureBoost
		}
		if err := s.registry.Register(models.NewDemandModel(dc)); err != nil {
			return err
		}
		if err := s.registry.Register(models.NewCapacityModel(cc)); err != nil {
			return err
		}
		rev := models.NewRevenueModel(models.DefaultRevenueConfig())
		if err := s.registry.Register(rev); err != nil {
			return err
		}
		return s.registry.Register(rev.UnitsFunction())
	}
}

// New creates a System with the standard distribution VG-Functions
// (Gaussian, Poisson, Uniform, Exponential, LogNormal, Bernoulli, Binomial,
// Weibull, Gamma) registered.
func New(opts ...Option) (*System, error) {
	s := &System{registry: vg.NewRegistry()}
	if err := vg.RegisterBuiltins(s.registry); err != nil {
		return nil, err
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// VGFunc is a user-supplied black-box stochastic function. It MUST be
// deterministic in (seed, args): the fingerprinting machinery compares
// outputs under fixed seeds, and a nondeterministic function silently
// poisons reuse. Use the seed to initialize your generator; never use
// global randomness or time.
type VGFunc func(seed uint64, args []float64) (float64, error)

// RegisterVG adds a scalar VG-Function callable from scenario SQL.
func (s *System) RegisterVG(name string, arity int, fn VGFunc) error {
	return s.registry.Register(vg.NewFunc(name, arity, func(seed uint64, args []value.Value) (value.Value, error) {
		fs := make([]float64, len(args))
		for i, a := range args {
			f, err := a.AsFloat()
			if err != nil {
				return value.Null, fmt.Errorf("fuzzyprophet: %s argument %d: %w", name, i, err)
			}
			fs[i] = f
		}
		out, err := fn(seed, fs)
		if err != nil {
			return value.Null, err
		}
		return value.Float(out), nil
	}))
}

// VGInvocations returns the total number of VG-Function invocations since
// the system was created (or counters were last reset) — the cost metric
// the paper's reuse machinery optimizes.
func (s *System) VGInvocations() int64 { return s.registry.TotalInvocations() }

// ResetVGInvocations zeroes the invocation counters.
func (s *System) ResetVGInvocations() { s.registry.ResetCounters() }

// CheckDeterminism probes the named VG-Function for seed-determinism, the
// contract fingerprinting depends on. A violation is reported as a
// *DeterminismError.
func (s *System) CheckDeterminism(name string, seed uint64, args []any) error {
	vals, err := toValues(args)
	if err != nil {
		return err
	}
	if err := s.registry.CheckDeterminism(name, seed, vals); err != nil {
		return &DeterminismError{Func: name, err: err}
	}
	return nil
}

// Scenario is a compiled scenario script bound to its system. A Scenario is
// immutable after AddTable calls complete and may be shared freely across
// goroutines; each Evaluate/EvaluateBatch/Optimize call and each Session
// carries its own evaluation state.
type Scenario struct {
	sys *System
	scn *scenario.Scenario
}

// Compile parses and validates a scenario script. Failures are reported as
// a *CompileError; when the lexer or parser rejects the script, the error
// carries the offending line and column.
func (s *System) Compile(src string) (*Scenario, error) {
	scn, err := scenario.Compile(src, s.registry)
	if err != nil {
		var perr *sqlparser.Error
		if errors.As(err, &perr) {
			return nil, &CompileError{Line: perr.Line, Col: perr.Col, Msg: perr.Msg, err: err}
		}
		return nil, &CompileError{Msg: err.Error(), err: err}
	}
	return &Scenario{sys: s, scn: scn}, nil
}

// AddTable attaches a deterministic side table that the scenario query's
// FROM clause may reference (e.g. a dimension table of datacenter regions
// joined against the Monte Carlo worlds). Values may be int/int64/float64/
// string/bool/nil.
func (sc *Scenario) AddTable(name string, cols []string, rows [][]any) error {
	converted := make([][]value.Value, len(rows))
	for i, row := range rows {
		vals, err := toValues(row)
		if err != nil {
			return fmt.Errorf("fuzzyprophet: table %s row %d: %w", name, i, err)
		}
		converted[i] = vals
	}
	t, err := sqlengine.NewTable(name, cols, converted)
	if err != nil {
		return err
	}
	return sc.scn.AddTable(t)
}

// ParamInfo describes one declared parameter.
type ParamInfo struct {
	Name   string
	Values []any
}

// Params returns the declared parameters in declaration order.
func (sc *Scenario) Params() []ParamInfo {
	out := make([]ParamInfo, 0, len(sc.scn.Space.Params))
	for _, def := range sc.scn.Space.Params {
		vals := make([]any, len(def.Values))
		for i, v := range def.Values {
			vals[i] = fromValue(v)
		}
		out = append(out, ParamInfo{Name: def.Name, Values: vals})
	}
	return out
}

// OutputColumns returns the scenario query's output column names.
func (sc *Scenario) OutputColumns() []string {
	return append([]string(nil), sc.scn.OutputCols...)
}

// Fingerprint returns a stable hex identity for the scenario: the SHA-256
// of the canonical printed form of its script. Two scenarios whose scripts
// differ only in whitespace or comments share a fingerprint, which is
// exactly the right key for reuse-snapshot caching — basis distributions
// depend only on the VG call sites, their arguments and the seed base, all
// of which the script determines. Side tables added with AddTable are NOT
// part of the fingerprint (they never influence VG sample vectors). The
// engine also keys its compiled-plan cache off this identity, so
// re-compiling an identical script (e.g. fpserver re-registration) reuses
// the warmed execution plan transparently.
func (sc *Scenario) Fingerprint() string {
	return sc.scn.Fingerprint()
}

// SpaceSize returns the total number of parameter-space grid points.
func (sc *Scenario) SpaceSize() int { return sc.scn.Space.Size() }

// GeneratedSQL returns the pure TSQL the Query Generator emits for a
// parameter point (diagnostics; the GUI of the paper displays this).
func (sc *Scenario) GeneratedSQL(point map[string]any) (string, error) {
	pt, err := sc.toDeclaredPoint(point)
	if err != nil {
		return "", err
	}
	return sc.scn.GenerateSQL(pt)
}

// ColumnSummary summarizes one output column's distribution at one point.
// The JSON field names are the wire format served by cmd/fpserver.
type ColumnSummary struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	CI95   float64 `json:"ci95"`
	// Note carries a confidence caveat on degraded results — the summary
	// describes only the worlds completed before the deadline cut, so N is
	// smaller and CI95 wider than requested. Empty on full results.
	Note string `json:"note,omitempty"`
}

// Evaluate runs the scenario once at a single parameter point and returns
// per-column distribution summaries. The context is checked per world-batch
// during simulation. For repeated evaluation, call EvaluateBatch or open a
// Session (online) or Optimize (offline) so fingerprint reuse can do its
// job.
func (sc *Scenario) Evaluate(ctx context.Context, point map[string]any, opts ...EvalOption) (map[string]ColumnSummary, error) {
	pt, err := sc.toDeclaredPoint(point)
	if err != nil {
		return nil, err
	}
	mcOpts, err := newEvalConfig(opts).mcOptions()
	if err != nil {
		return nil, err
	}
	ev := mc.NewEvaluator(sc.scn, mcOpts)
	res, err := ev.EvaluatePoint(ctx, pt)
	if err != nil {
		return nil, err
	}
	return summarize(res), nil
}

// BatchPoint is one point's outcome within an EvaluateBatch call.
type BatchPoint struct {
	// Point is the evaluated parameter point, as passed in.
	Point map[string]any `json:"point"`
	// Summaries maps each numeric output column to its distribution
	// summary at this point.
	Summaries map[string]ColumnSummary `json:"summaries"`
	// SiteOutcome records, per VG call site, how its samples were obtained
	// ("computed", "cached", "identity", "affine").
	SiteOutcome map[string]string `json:"site_outcome,omitempty"`
	// Degraded marks a partial point: the deadline expired before the full
	// world budget and the summaries cover only WorldsCompleted worlds
	// (WithAllowDegraded). Each summary carries a confidence Note.
	Degraded bool `json:"degraded,omitempty"`
	// WorldsCompleted is the number of worlds behind a degraded point's
	// summaries; zero when Degraded is false.
	WorldsCompleted int `json:"worlds_completed,omitempty"`
}

// BatchResult is the outcome of EvaluateBatch.
type BatchResult struct {
	// Points holds one entry per input point, in input order.
	Points []BatchPoint `json:"points"`
	// ReuseCounts tallies per-outcome site counts across the whole batch
	// ("computed", "cached", "identity", "affine"). Empty when reuse is
	// disabled.
	ReuseCounts map[string]int `json:"reuse_counts,omitempty"`
	// Elapsed is the wall-clock duration of the batch.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Degraded is true when any point is degraded or the batch was cut
	// short by the deadline under WithAllowDegraded — Points then holds
	// fewer entries than the input.
	Degraded bool `json:"degraded,omitempty"`
}

// EvaluateBatch evaluates many parameter points through one shared reuse
// engine, so fingerprint remapping amortizes across the batch exactly as
// the paper's offline mode intends: on a correlated grid, most points are
// served by identity/affine mappings of the few actually simulated ones.
// Points evaluate in order; the context is checked before every point (and
// per world-batch inside), so a cancelled batch stops within one
// world-batch and returns the context's error.
func (sc *Scenario) EvaluateBatch(ctx context.Context, points []map[string]any, opts ...EvalOption) (*BatchResult, error) {
	start := time.Now()
	mcOpts, err := newEvalConfig(opts).mcOptions()
	if err != nil {
		return nil, err
	}
	// Validate every point up front: a bad key at the end of a large batch
	// must not cost the simulation of everything before it.
	pts := make([]guide.Point, len(points))
	for i, point := range points {
		if pts[i], err = sc.toDeclaredPoint(point); err != nil {
			return nil, err
		}
	}
	ev := mc.NewEvaluator(sc.scn, mcOpts)
	out := &BatchResult{
		Points:      make([]BatchPoint, 0, len(points)),
		ReuseCounts: map[string]int{},
	}
	for i, pt := range pts {
		res, err := ev.EvaluatePoint(ctx, pt)
		if err != nil {
			// Deadline mid-batch under WithAllowDegraded: the points already
			// evaluated are complete answers — return them flagged degraded
			// rather than discarding the whole batch.
			if mcOpts.AllowDegraded && ctx.Err() != nil && len(out.Points) > 0 {
				out.Degraded = true
				break
			}
			return nil, err
		}
		outcome := make(map[string]string, len(res.SiteOutcome))
		for site, kind := range res.SiteOutcome {
			outcome[site] = kind.String()
		}
		if res.Degraded {
			out.Degraded = true
		}
		out.Points = append(out.Points, BatchPoint{
			Point:           points[i],
			Summaries:       summarize(res),
			SiteOutcome:     outcome,
			Degraded:        res.Degraded,
			WorldsCompleted: res.WorldsCompleted,
		})
	}
	if mcOpts.Reuse != nil {
		for k, v := range mcOpts.Reuse.Counts() {
			out.ReuseCounts[k.String()] = v
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

func summarize(res *mc.PointResult) map[string]ColumnSummary {
	if len(res.Columns) == 0 && len(res.Sketches) > 0 {
		// Sketch-only evaluation (WithSketchOnly): no sample vectors came
		// back, so the summary reads straight off the merged sketches —
		// moments are exact, Median/P95 carry the t-digest tolerance.
		out := make(map[string]ColumnSummary, len(res.Sketches))
		for col, cs := range res.Sketches {
			out[col] = ColumnSummary{
				N:      cs.Count(),
				Mean:   cs.Expect(),
				StdDev: cs.StdDev(),
				Min:    cs.Moments.Min(),
				Max:    cs.Moments.Max(),
				Median: cs.Median(),
				P95:    cs.P95(),
				CI95:   cs.CI95(),
				Note:   degradedNote(res),
			}
		}
		return out
	}
	out := make(map[string]ColumnSummary, len(res.Columns))
	for col, samples := range res.Columns {
		cs := aggregate.NewColumnStats()
		cs.AddAll(samples)
		out[col] = ColumnSummary{
			N:      cs.Count(),
			Mean:   cs.Expect(),
			StdDev: cs.StdDev(),
			Min:    cs.Moments.Min(),
			Max:    cs.Moments.Max(),
			Median: cs.Median(),
			P95:    cs.P95(),
			CI95:   cs.CI95(),
		}
	}
	return out
}

// degradedNote renders the per-column confidence caveat carried by a
// degraded result's summaries; "" for full results.
func degradedNote(res *mc.PointResult) string {
	if !res.Degraded {
		return ""
	}
	return fmt.Sprintf("degraded: estimated from %d of %d worlds (moments exact over the completed worlds; quantiles within the t-digest bound; confidence intervals wider than requested)", res.WorldsCompleted, res.Worlds)
}

// WorldShard is a half-open Monte Carlo world range [Lo, Hi) within a
// render's total world count — the unit of distributed evaluation.
type WorldShard struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Index is the shard's position within the render's split (0-based).
	// Coordinators that size shards per worker use it for worker affinity:
	// shard i was sized by worker i's weight, so it is routed there first.
	Index int `json:"index,omitempty"`
}

// ColumnSketch is the serializable mergeable aggregate of one output
// column over one world range: raw Welford moments plus a t-digest
// centroid list. Shard workers return sketches alongside partial sample
// vectors; merging sketches in shard order reproduces the whole range's
// moments exactly (up to float rounding) and its quantiles within the
// sketch tolerance.
type ColumnSketch = aggregate.ColumnSketch

// ShardResult is a partial render over one world shard: per-column sample
// vectors for the rows the shard's worlds produced, in world order, plus a
// mergeable sketch per column.
type ShardResult struct {
	// Rows is the number of output rows the shard produced (equals the
	// shard's world count for plain scenarios; joins can yield more, WHERE
	// fewer).
	Rows int `json:"rows"`
	// Columns maps each numeric output column to its partial sample vector.
	Columns map[string][]float64 `json:"columns"`
	// Sketches maps each column to its mergeable aggregate.
	Sketches map[string]ColumnSketch `json:"sketches,omitempty"`
}

// ShardProtocolVersion is the wire protocol version the shard fan-out
// speaks (fpserver's POST /shard/render). Version 2 added fingerprint-only
// requests with cache-miss re-send and the sketch-only response mode;
// coordinators downgrade per worker when a v1 worker rejects a v2 request.
const ShardProtocolVersion = 2

// ShardRequest describes one world shard of a point render for a
// ShardEvaluator: the parameter point, the render's total world count and
// seed base (a worker re-derives every sample from these), the assigned
// world range, and whether a sketch-only response suffices.
type ShardRequest struct {
	// Point is the parameter point being rendered.
	Point map[string]any
	// Worlds is the render's TOTAL world count (not the shard's).
	Worlds int
	// Seed is the render's seed base (0 means the engine default).
	Seed uint64
	// Shard is the assigned world range.
	Shard WorldShard
	// SketchOnly asks for merged per-column sketches without the per-world
	// sample vectors — O(compression) instead of O(worlds) response size.
	SketchOnly bool
}

// ShardEvaluator evaluates one world shard of a point render, typically on
// another machine (fpserver's shard fan-out implements it over HTTP).
// Implementations must be safe for concurrent calls; an error makes the
// caller re-evaluate the shard locally.
type ShardEvaluator interface {
	EvaluateShard(ctx context.Context, req ShardRequest) (*ShardResult, error)
}

// EvaluateShard evaluates ONLY the worlds in shard (within [0, worlds))
// at one parameter point — the worker half of distributed rendering.
// Because world seeds derive per (site, world) from the seed base, the
// returned partial vectors are bit-identical to the corresponding rows of
// a full local evaluation; a coordinator concatenates shard results in
// world order to reproduce the single-range render exactly. The shard is
// split across WithShards-many in-process sub-shards (pass GOMAXPROCS to
// saturate a worker's cores). Fingerprint reuse is not consulted — partial
// vectors are not valid bases. The scenario's query must be shardable
// (non-grouped, within the compiled-plan subset); others are rejected.
func (sc *Scenario) EvaluateShard(ctx context.Context, point map[string]any, worlds int, seed uint64, shard WorldShard, opts ...EvalOption) (*ShardResult, error) {
	pt, err := sc.toDeclaredPoint(point)
	if err != nil {
		return nil, err
	}
	cfg := newEvalConfig(opts)
	cfg.disableReuse = true // shard evaluation never consults reuse
	if worlds > 0 {
		cfg.worlds = worlds
	}
	if seed != 0 {
		cfg.seedBase = seed
	}
	mcOpts, err := cfg.mcOptions()
	if err != nil {
		return nil, err
	}
	mcOpts.Runner = nil // a worker never re-fans out
	ev := mc.NewEvaluator(sc.scn, mcOpts)
	out, err := ev.EvaluateShard(ctx, pt, mc.WorldRange{Lo: shard.Lo, Hi: shard.Hi})
	if err != nil {
		return nil, err
	}
	res := &ShardResult{Columns: out.Columns, Sketches: out.Sketches}
	for _, fs := range out.Columns {
		res.Rows = len(fs)
		break
	}
	if res.Rows == 0 && len(out.Columns) == 0 {
		// Sketch-only shard (WithSketchOnly): the row count survives in the
		// sketches' observation counts.
		for _, sk := range out.Sketches {
			res.Rows = int(sk.Count)
			break
		}
	}
	return res, nil
}

// Session is an online-mode exploration (paper §3.2): sliders plus a live
// graph with fingerprint reuse across adjustments. A Session is safe for
// concurrent use — slider state is mutex-guarded, and a render works from a
// snapshot of the positions taken when it starts, so SetParam from one
// goroutine never races a Render in another.
type Session struct {
	scn   *scenario.Scenario
	inner *online.Session
	reuse *mc.Reuse
}

// OpenSession starts the online mode. The scenario must declare a GRAPH
// statement.
func (sc *Scenario) OpenSession(opts ...EvalOption) (*Session, error) {
	mcOpts, err := newEvalConfig(opts).mcOptions()
	if err != nil {
		return nil, err
	}
	inner, err := online.NewSession(sc.scn, mcOpts)
	if err != nil {
		return nil, err
	}
	return &Session{scn: sc.scn, inner: inner, reuse: mcOpts.Reuse}, nil
}

// OpenSessionFrom starts the online mode with reuse state previously saved
// by Session.SaveReuse — the basis distributions and fingerprints carry
// over, so previously explored slider positions render without fresh
// simulation even in a new process. The scenario, models and seed base must
// match the saving session's; a seed-base mismatch is detected and
// reported on first use.
func (sc *Scenario) OpenSessionFrom(rd io.Reader, opts ...EvalOption) (*Session, error) {
	cfg := newEvalConfig(opts)
	if cfg.disableReuse {
		return nil, fmt.Errorf("fuzzyprophet: OpenSessionFrom requires reuse enabled")
	}
	reuse, err := mc.LoadReuse(rd, cfg.storeOptions())
	if err != nil {
		return nil, err
	}
	mcOpts := mc.Options{Worlds: cfg.worlds, SeedBase: cfg.seedBase, Workers: cfg.workers, Shards: cfg.shards, Reuse: reuse}
	if cfg.shardEval != nil {
		mcOpts.Runner = shardRunnerFor(cfg.shardEval)
	}
	inner, err := online.NewSession(sc.scn, mcOpts)
	if err != nil {
		return nil, err
	}
	return &Session{scn: sc.scn, inner: inner, reuse: reuse}, nil
}

// SaveReuse serializes the session's reuse state (basis distributions plus
// fingerprint index) so a later session — possibly in another process — can
// resume with OpenSessionFrom.
func (s *Session) SaveReuse(w io.Writer) error {
	if s.reuse == nil {
		return fmt.Errorf("fuzzyprophet: session has reuse disabled; nothing to save")
	}
	return s.reuse.Save(w)
}

// Axis returns the graph's X-axis parameter.
func (s *Session) Axis() string { return s.inner.Axis() }

// SetParam moves a slider to the given value (which must belong to the
// parameter's declared space). An undeclared name is reported as a
// *UnknownParamError. Safe to call concurrently with Render: an in-flight
// render keeps the positions it snapshotted at its start.
func (s *Session) SetParam(name string, val any) error {
	if s.scn.Space.Index(name) < 0 {
		return &UnknownParamError{Name: name}
	}
	v, err := toValue(val)
	if err != nil {
		return err
	}
	return s.inner.SetParam(name, v)
}

// RenderStats quantifies how much of a render was served by reuse.
type RenderStats struct {
	Points     int           `json:"points"`
	Recomputed int           `json:"recomputed"`
	Remapped   int           `json:"remapped"`
	Unchanged  int           `json:"unchanged"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	// Degraded marks a frame rendered under a deadline that cut the world
	// budget (or the point sweep) short with WithAllowDegraded: every point
	// is present-and-exact or present-and-sketch-estimated, but at least
	// one covers fewer worlds than requested.
	Degraded bool `json:"degraded,omitempty"`
	// WorldsCompleted is the smallest completed world count across the
	// frame's degraded points; zero when Degraded is false.
	WorldsCompleted int `json:"worlds_completed,omitempty"`
}

// RecomputedFraction is the fraction of X positions that needed fresh
// simulation.
func (r RenderStats) RecomputedFraction() float64 {
	if r.Points == 0 {
		return 0
	}
	return float64(r.Recomputed) / float64(r.Points)
}

// Series is one rendered graph series.
type Series struct {
	Name       string    `json:"name"`
	Agg        string    `json:"agg"`
	Column     string    `json:"column"`
	Style      []string  `json:"style,omitempty"`
	SecondAxis bool      `json:"second_axis,omitempty"`
	X          []float64 `json:"x"`
	Y          []float64 `json:"y"`
	CI95       []float64 `json:"ci95,omitempty"`
}

// Graph is one rendered frame of the online interface (Figure 3). It
// marshals to the JSON shape cmd/fpserver's render endpoint serves: the
// axis, X values, per-series Y vectors with CI95 bands, and reuse stats.
type Graph struct {
	Axis   string      `json:"axis"`
	X      []float64   `json:"x"`
	Series []Series    `json:"series"`
	Stats  RenderStats `json:"stats"`
}

// Render evaluates the graph at the current slider positions. The context
// is checked before every X position and per world-batch inside, so a
// cancelled render — superseded by a newer slider adjustment, say — aborts
// within milliseconds.
func (s *Session) Render(ctx context.Context) (*Graph, error) {
	g, err := s.inner.Render(ctx)
	if err != nil {
		return nil, err
	}
	return convertGraph(g), nil
}

// Ascii renders the last graph as a Figure 3-style text chart, including
// each series' 95% confidence band (shaded with ':') and second-axis
// placement.
func (s *Session) Ascii(g *Graph, height int) (string, error) {
	// Rebuild the internal representation for the renderer.
	ig := &online.Graph{Axis: g.Axis, X: g.X}
	ig.Stats.Points = g.Stats.Points
	ig.Stats.Recomputed = g.Stats.Recomputed
	ig.Stats.Remapped = g.Stats.Remapped
	ig.Stats.Unchanged = g.Stats.Unchanged
	ig.Stats.Elapsed = g.Stats.Elapsed
	for _, srs := range g.Series {
		is := online.GraphSeries{
			Name: srs.Name, Agg: srs.Agg, Column: srs.Column,
			Style: srs.Style, SecondAxis: srs.SecondAxis,
		}
		for i := range srs.Y {
			p := online.SeriesPoint{X: srs.X[i], Y: srs.Y[i]}
			if i < len(srs.CI95) {
				p.CI95 = srs.CI95[i]
			}
			is.Points = append(is.Points, p)
		}
		ig.Series = append(ig.Series, is)
	}
	return online.Chart(ig, height)
}

// Prefetch proactively evaluates neighboring slider positions (radius
// index steps along the given axes; nil = all sliders), anticipating the
// user's next adjustments. A cancelled context stops the prefetch promptly;
// whatever it already warmed stays in the reuse store.
func (s *Session) Prefetch(ctx context.Context, axes []string, radius int) (int, error) {
	return s.inner.Prefetch(ctx, axes, radius)
}

// RenderProgressive renders the graph at doubling world counts from
// startWorlds up to the configured maximum, invoking frame with each
// refined graph — the paper's "live, progressively refined view". Return
// false from frame to stop early; the last frame is returned.
func (s *Session) RenderProgressive(ctx context.Context, startWorlds int, frame func(g *Graph, worlds int) bool) (*Graph, error) {
	g, err := s.inner.RenderProgressive(ctx, startWorlds, func(ig *online.Graph, worlds int) bool {
		return frame(convertGraph(ig), worlds)
	})
	if err != nil {
		return nil, err
	}
	return convertGraph(g), nil
}

// ExplorationMap renders the paper's parameter-space exploration grid over
// two slider parameters: '#' marks rendered positions, 'o' prefetched ones,
// '.' unexplored ones (other sliders held at their current values).
func (s *Session) ExplorationMap(rowParam, colParam string) (string, error) {
	grid, err := s.inner.ExplorationMap(rowParam, colParam)
	if err != nil {
		return "", err
	}
	return grid.Render(), nil
}

// ExplorationMapJSON is ExplorationMap for machine consumers: the grid
// encoded as JSON with named cell kinds ("computed", "cached",
// "unexplored", ...) instead of ASCII glyphs. fpserver serves this from
// GET /sessions/{id}/map.
func (s *Session) ExplorationMapJSON(rowParam, colParam string) ([]byte, error) {
	grid, err := s.inner.ExplorationMap(rowParam, colParam)
	if err != nil {
		return nil, err
	}
	return json.Marshal(grid)
}

// TimeToFirstAccurateGuess measures how long the session needs to produce
// converged statistics at the current sliders (experiment E1).
func (s *Session) TimeToFirstAccurateGuess(ctx context.Context, eps float64, minWorlds int) (time.Duration, int, error) {
	return s.inner.TimeToFirstAccurateGuess(ctx, eps, minWorlds)
}

// ReuseCounts returns per-outcome point counts ("computed", "cached",
// "identity", "affine") since the session opened.
func (s *Session) ReuseCounts() map[string]int {
	out := map[string]int{}
	if s.reuse == nil {
		return out
	}
	for k, v := range s.reuse.Counts() {
		out[k.String()] = v
	}
	return out
}

func convertGraph(g *online.Graph) *Graph {
	out := &Graph{
		Axis: g.Axis,
		X:    append([]float64(nil), g.X...),
		Stats: RenderStats{
			Points:          g.Stats.Points,
			Recomputed:      g.Stats.Recomputed,
			Remapped:        g.Stats.Remapped,
			Unchanged:       g.Stats.Unchanged,
			Elapsed:         g.Stats.Elapsed,
			Degraded:        g.Stats.Degraded,
			WorldsCompleted: g.Stats.WorldsCompleted,
		},
	}
	for _, srs := range g.Series {
		s := Series{
			Name: srs.Name, Agg: srs.Agg, Column: srs.Column,
			Style: append([]string(nil), srs.Style...), SecondAxis: srs.SecondAxis,
		}
		for _, p := range srs.Points {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.Y)
			s.CI95 = append(s.CI95, p.CI95)
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// OptimizeRow is one grouped-parameter assignment's outcome.
type OptimizeRow struct {
	Group    map[string]any
	Feasible bool
	Metrics  map[string]float64
}

// OptimizeResult is the offline mode's outcome.
type OptimizeResult struct {
	GroupParams     []string
	FreeParams      []string
	Rows            []OptimizeRow
	Best            []OptimizeRow
	PointsEvaluated int
	GroupsTotal     int
	GroupsExplored  int
	Elapsed         time.Duration
	ReuseCounts     map[string]int
}

// Exhaustive reports whether the whole grouped space was explored (false
// under a WithGroupBudget).
func (r *OptimizeResult) Exhaustive() bool { return r.GroupsExplored == r.GroupsTotal }

// Progress reports offline-mode progress: done/total points plus the
// reuse outcome of the last point's sites (keyed by site ID).
type Progress func(done, total int, point map[string]any, siteOutcome map[string]string)

// Optimize runs the offline mode (paper §3.3): a full parameter-space
// sweep, the OPTIMIZE constraint per group, and the lexicographic FOR
// goals. The scenario must declare an OPTIMIZE statement. The context is
// checked before every point of the sweep (and per world-batch inside), so
// cancellation aborts in milliseconds, returning the context's error; reuse
// state accumulated before the abort is kept by the engine.
func (sc *Scenario) Optimize(ctx context.Context, progress Progress, opts ...EvalOption) (*OptimizeResult, error) {
	cfg := newEvalConfig(opts)
	mcOpts, err := cfg.mcOptions()
	if err != nil {
		return nil, err
	}
	runOpts := optimize.Options{MC: mcOpts, GroupBudget: cfg.groupBudget}
	if progress != nil {
		runOpts.Progress = func(done, total int, pt guide.Point, res *mc.PointResult) {
			outcome := make(map[string]string, len(res.SiteOutcome))
			for site, kind := range res.SiteOutcome {
				outcome[site] = kind.String()
			}
			progress(done, total, fromPoint(pt), outcome)
		}
	}
	res, err := optimize.Run(ctx, sc.scn, runOpts)
	if err != nil {
		return nil, err
	}
	out := &OptimizeResult{
		GroupParams:     res.GroupParams,
		FreeParams:      res.FreeParams,
		PointsEvaluated: res.PointsEvaluated,
		GroupsTotal:     res.GroupsTotal,
		GroupsExplored:  res.GroupsExplored,
		Elapsed:         res.Elapsed,
		ReuseCounts:     map[string]int{},
	}
	if mcOpts.Reuse != nil {
		for k, v := range mcOpts.Reuse.Counts() {
			out.ReuseCounts[k.String()] = v
		}
	}
	convert := func(rows []optimize.GroupRow) []OptimizeRow {
		converted := make([]OptimizeRow, len(rows))
		for i, r := range rows {
			converted[i] = OptimizeRow{
				Group:    fromPoint(r.Group),
				Feasible: r.Feasible,
				Metrics:  r.Metrics,
			}
		}
		return converted
	}
	out.Rows = convert(res.Rows)
	out.Best = convert(res.Best)
	return out, nil
}

// toValue converts a native Go value into the engine's value system.
func toValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.Int(int64(x)), nil
	case int32:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float32:
		return value.Float(float64(x)), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	default:
		return value.Null, fmt.Errorf("fuzzyprophet: unsupported value type %T", v)
	}
}

func toValues(vs []any) ([]value.Value, error) {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		var err error
		out[i], err = toValue(v)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// toDeclaredPoint converts a point map, reporting keys the scenario does
// not declare as *UnknownParamError.
func (sc *Scenario) toDeclaredPoint(m map[string]any) (guide.Point, error) {
	for k := range m {
		if sc.scn.Space.Index(k) < 0 {
			return nil, &UnknownParamError{Name: k}
		}
	}
	return toPoint(m)
}

func toPoint(m map[string]any) (guide.Point, error) {
	pt := make(guide.Point, len(m))
	for k, v := range m {
		val, err := toValue(v)
		if err != nil {
			return nil, fmt.Errorf("fuzzyprophet: parameter %s: %w", k, err)
		}
		pt[k] = val
	}
	return pt, nil
}

// fromValue converts an engine value to a native Go value (int64, float64,
// string, bool or nil).
func fromValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		n, _ := v.AsInt()
		return n
	case value.KindFloat:
		f, _ := v.AsFloat()
		return f
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		b, _ := v.AsBool()
		return b
	default:
		return nil
	}
}

func fromPoint(pt guide.Point) map[string]any {
	out := make(map[string]any, len(pt))
	for k, v := range pt {
		out[k] = fromValue(v)
	}
	return out
}
