package fuzzyprophet

import (
	"context"
	"sync"

	"fuzzyprophet/internal/mc"
)

// ShardWorker serves shard evaluations for ONE scenario with a freelist of
// warmed evaluators — the worker half of wire protocol v2's per-fingerprint
// evaluator pool. Scenario.EvaluateShard builds a fresh Monte Carlo
// evaluator per call, repaying the worlds-table and shard-env warm-up on
// every request; a ShardWorker checks an evaluator out of its pool,
// retargets it at the request's (worlds, seed, sketch mode) via a cheap
// reconfigure, and returns it after the render, so steady-state shard
// serving allocates nothing per request beyond the response itself.
//
// A ShardWorker is safe for concurrent use: concurrent requests each check
// out their own evaluator (the pool grows to peak concurrency and is
// reused thereafter). The options fixed at construction (worker
// parallelism, in-process sub-shards, shard-input cache) apply to every
// request; reuse is always disabled, as in Scenario.EvaluateShard.
type ShardWorker struct {
	scn  *Scenario
	opts mc.Options

	mu   sync.Mutex
	free []*mc.Evaluator
}

// NewShardWorker returns a shard-serving evaluator pool for the scenario.
// The scenario's query must be shardable for requests to succeed (the
// check happens per call, matching Scenario.EvaluateShard).
func (sc *Scenario) NewShardWorker(opts ...EvalOption) (*ShardWorker, error) {
	cfg := newEvalConfig(opts)
	cfg.disableReuse = true // shard evaluation never consults reuse
	mcOpts, err := cfg.mcOptions()
	if err != nil {
		return nil, err
	}
	mcOpts.Runner = nil // a worker never re-fans out
	return &ShardWorker{scn: sc, opts: mcOpts}, nil
}

// EvaluateShard evaluates the worlds in shard (within [0, worlds)) at one
// parameter point, exactly like Scenario.EvaluateShard but against a
// pooled evaluator. With sketchOnly set the result carries only merged
// per-column sketches (Columns nil), the v2 compressed response mode.
func (w *ShardWorker) EvaluateShard(ctx context.Context, point map[string]any, worlds int, seed uint64, shard WorldShard, sketchOnly bool) (*ShardResult, error) {
	pt, err := w.scn.toDeclaredPoint(point)
	if err != nil {
		return nil, err
	}
	ev := w.checkout()
	ev.Reconfigure(worlds, seed, sketchOnly)
	out, err := ev.EvaluateShard(ctx, pt, mc.WorldRange{Lo: shard.Lo, Hi: shard.Hi})
	if err != nil {
		// Discard the evaluator: after a failure — especially a recovered
		// panic mid-kernel — its pooled shard envs may hold inconsistent
		// state, and a fresh evaluator is cheap next to serving wrong
		// worlds. The freelist refills from successful requests.
		return nil, err
	}
	w.checkin(ev)
	res := &ShardResult{Columns: out.Columns, Sketches: out.Sketches}
	for _, fs := range out.Columns {
		res.Rows = len(fs)
		break
	}
	if res.Rows == 0 && len(out.Columns) == 0 {
		for _, sk := range out.Sketches {
			res.Rows = int(sk.Count)
			break
		}
	}
	return res, nil
}

func (w *ShardWorker) checkout() *mc.Evaluator {
	w.mu.Lock()
	if n := len(w.free); n > 0 {
		ev := w.free[n-1]
		w.free = w.free[:n-1]
		w.mu.Unlock()
		return ev
	}
	w.mu.Unlock()
	return mc.NewEvaluator(w.scn.scn, w.opts)
}

func (w *ShardWorker) checkin(ev *mc.Evaluator) {
	w.mu.Lock()
	w.free = append(w.free, ev)
	w.mu.Unlock()
}
