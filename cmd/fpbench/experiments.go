package main

import (
	"context"
	"fmt"
	"math"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/guide"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/models"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/stats"
	"fuzzyprophet/internal/storage"
	"fuzzyprophet/internal/value"
	"fuzzyprophet/internal/vg"
	"fuzzyprophet/internal/viz"
)

// figure2Verbatim is the paper's Figure 2, character-faithful modulo
// whitespace.
const figure2Verbatim = `
-- DEFINITION --
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature)
       AS demand,
       CapacityModel(@current, @purchase1, @purchase2)
       AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
       AS overload
INTO results;

GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
`

// sweepScenario builds the demo scenario on a given purchase grid step and
// threshold.
func sweepScenario(step int, threshold float64) string {
	return fmt.Sprintf(`
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY %d;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY %d;
DECLARE PARAMETER @feature AS SET (12,36,44);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
GRAPH OVER @current EXPECT overload WITH bold red, EXPECT capacity WITH blue y2, EXPECT_STDDEV demand WITH orange y2;
OPTIMIZE SELECT @feature, @purchase1, @purchase2 FROM results
WHERE MAX(EXPECT overload) < %g AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`, step, step, threshold)
}

func demoSystem() (*fp.System, error) {
	return fp.New(fp.WithDemoModels())
}

// runFig2 reproduces Figure 2: the scenario text parses, round-trips
// through the canonical printer, and compiles against the demo models.
func runFig2() error {
	section("FIG2 — Figure 2: the example business scenario")
	script, err := sqlparser.Parse(figure2Verbatim)
	if err != nil {
		return err
	}
	fmt.Printf("parsed statements: %d\n", len(script.Statements))
	canonical := sqlparser.Print(script)
	reparsed, err := sqlparser.Parse(canonical)
	if err != nil {
		return fmt.Errorf("canonical form does not re-parse: %w", err)
	}
	if sqlparser.Print(reparsed) != canonical {
		return fmt.Errorf("print/parse fixpoint violated")
	}
	fmt.Println("print → parse → print fixpoint: OK")

	sys, err := demoSystem()
	if err != nil {
		return err
	}
	scn, err := sys.Compile(figure2Verbatim)
	if err != nil {
		return err
	}
	fmt.Printf("parameter space: %d points (53 × 14 × 14 × 3)\n", scn.SpaceSize())
	fmt.Printf("VG call sites: DemandModel, CapacityModel; outputs: %v\n", scn.OutputColumns())
	fmt.Println("\ncanonical form:")
	fmt.Println(canonical)
	return nil
}

// runFig3 reproduces Figure 3: the online interface's graph — E[overload]
// (bold red), E[capacity] (blue, y2), stddev[demand] (orange, y2) per week.
func runFig3(ctx context.Context, worlds int) error {
	section("FIG3 — Figure 3: the online interface graph")
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	scn, err := sys.Compile(sweepScenario(8, 0.05))
	if err != nil {
		return err
	}
	session, err := scn.OpenSession(fp.WithWorlds(worlds))
	if err != nil {
		return err
	}
	for name, v := range map[string]int{"purchase1": 16, "purchase2": 32, "feature": 36} {
		if err := session.SetParam(name, v); err != nil {
			return err
		}
	}
	g, err := session.Render(ctx)
	if err != nil {
		return err
	}
	chart, err := session.Ascii(g, 16)
	if err != nil {
		return err
	}
	fmt.Println(chart)
	fmt.Println("series values (per week):")
	fmt.Println("week  E[overload]  E[capacity]  sd[demand]")
	for i := range g.X {
		fmt.Printf("%4.0f  %11.4f  %11.0f  %10.0f\n",
			g.X[i], g.Series[0].Y[i], g.Series[1].Y[i], g.Series[2].Y[i])
	}
	return nil
}

// runFig4 reproduces Figure 4: a 2-D slice of fingerprint mappings for the
// Capacity model over (purchase1 × purchase2), classifying each explored
// point as computed, identity-mapped, affine-mapped or cached.
func runFig4(ctx context.Context, worlds, step int) error {
	section("FIG4 — Figure 4: 2-D slice of fingerprint mappings (Capacity model)")
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		return err
	}
	if err := models.RegisterDefaults(reg); err != nil {
		return err
	}
	scn, err := scenario.Compile(sweepScenario(step, 0.05), reg)
	if err != nil {
		return err
	}
	reuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		return err
	}
	ev := mc.NewEvaluator(scn, mc.Options{Worlds: worlds, Reuse: reuse})

	var p1Vals, p2Vals []int64
	for v := int64(0); v <= 48; v += int64(step) {
		p1Vals = append(p1Vals, v)
		p2Vals = append(p2Vals, v)
	}
	rowLabels := make([]string, len(p1Vals))
	colLabels := make([]string, len(p2Vals))
	for i, v := range p1Vals {
		rowLabels[i] = fmt.Sprint(v)
	}
	for i, v := range p2Vals {
		colLabels[i] = fmt.Sprint(v)
	}
	const week = 26 // the slice's fixed @current
	grid := viz.NewMapGrid(
		fmt.Sprintf("fingerprint mappings for CapacityModel at @current=%d, @feature=36", week),
		"p1", "p2", rowLabels, colLabels)

	for i, p1 := range p1Vals {
		for j, p2 := range p2Vals {
			pt := guide.Point{
				"current":   value.Int(week),
				"purchase1": value.Int(p1),
				"purchase2": value.Int(p2),
				"feature":   value.Int(36),
			}
			res, err := ev.EvaluatePoint(ctx, pt)
			if err != nil {
				return err
			}
			switch res.SiteOutcome["CapacityModel#0"] {
			case mc.Computed:
				grid.Set(i, j, viz.CellComputed)
			case mc.Identity:
				grid.Set(i, j, viz.CellIdentity)
			case mc.Affine:
				grid.Set(i, j, viz.CellAffine)
			case mc.CachedExact:
				grid.Set(i, j, viz.CellCached)
			}
		}
	}
	fmt.Println(grid.Render())
	counts := grid.Counts()
	explored := counts[viz.CellComputed] + counts[viz.CellIdentity] + counts[viz.CellAffine] + counts[viz.CellCached]
	reused := explored - counts[viz.CellComputed]
	fmt.Printf("points served without fresh simulation: %d / %d (%.0f%%)\n",
		reused, explored, 100*float64(reused)/float64(explored))
	fmt.Printf("index reuse statistics: %s\n", reuse.Index().Stats())
	return nil
}

// runE1 measures §3.2's first claim: the first accurate render takes
// noticeably long; a warm session (fingerprint store populated by earlier
// exploration) reaches accuracy much faster.
func runE1(ctx context.Context, worlds int) error {
	section("E1 — §3.2: time to first accurate statistics (cold vs warm)")
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	scn, err := sys.Compile(sweepScenario(8, 0.05))
	if err != nil {
		return err
	}

	// Both sessions measure time-to-accuracy at the SAME target point
	// (purchase1=24); the warm session has previously explored the
	// neighboring purchase1=16, so its basis store lets fingerprint
	// mappings replace most fresh simulation.
	target := map[string]int{"purchase1": 24, "purchase2": 32, "feature": 36}

	cold, err := scn.OpenSession(fp.WithWorlds(worlds))
	if err != nil {
		return err
	}
	for name, v := range target {
		if err := cold.SetParam(name, v); err != nil {
			return err
		}
	}
	coldTime, coldWorlds, err := cold.TimeToFirstAccurateGuess(ctx, 0.1, 64)
	if err != nil {
		return err
	}
	fmt.Printf("cold session:  %v to first accurate guess (%d worlds/point, 53 points)\n",
		coldTime.Round(time.Millisecond), coldWorlds)

	warm, err := scn.OpenSession(fp.WithWorlds(worlds))
	if err != nil {
		return err
	}
	for name, v := range target {
		if err := warm.SetParam(name, v); err != nil {
			return err
		}
	}
	if err := warm.SetParam("purchase1", 16); err != nil {
		return err
	}
	if _, err := warm.Render(ctx); err != nil { // prior exploration, not timed
		return err
	}
	if err := warm.SetParam("purchase1", 24); err != nil {
		return err
	}
	warmTime, warmWorlds, err := warm.TimeToFirstAccurateGuess(ctx, 0.1, 64)
	if err != nil {
		return err
	}
	fmt.Printf("warm session:  %v to first accurate guess at the same point after exploring @purchase1=16 (%d worlds/point)\n",
		warmTime.Round(time.Millisecond), warmWorlds)
	if warmTime < coldTime {
		fmt.Printf("speedup: %.1fx lower time-to-first-accurate-guess\n",
			float64(coldTime)/float64(warmTime))
	}
	return nil
}

// runE2 measures §3.2's second claim: an adjustment re-renders only
// portions of the graph.
func runE2(ctx context.Context, worlds int) error {
	section("E2 — §3.2: fraction of the graph recomputed after adjustments")
	sys, err := demoSystem()
	if err != nil {
		return err
	}
	scn, err := sys.Compile(sweepScenario(8, 0.05))
	if err != nil {
		return err
	}
	session, err := scn.OpenSession(fp.WithWorlds(worlds))
	if err != nil {
		return err
	}
	for name, v := range map[string]int{"purchase1": 16, "purchase2": 32, "feature": 36} {
		if err := session.SetParam(name, v); err != nil {
			return err
		}
	}
	sys.ResetVGInvocations()
	g, err := session.Render(ctx)
	if err != nil {
		return err
	}
	firstInv := sys.VGInvocations()
	fmt.Printf("first render:            recomputed %2d/%d weeks (%3.0f%%), %8d VG invocations, %v\n",
		g.Stats.Recomputed, g.Stats.Points, 100*g.Stats.RecomputedFraction(), firstInv,
		g.Stats.Elapsed.Round(time.Millisecond))

	adjust := func(label, param string, v int) error {
		if err := session.SetParam(param, v); err != nil {
			return err
		}
		sys.ResetVGInvocations()
		g, err := session.Render(ctx)
		if err != nil {
			return err
		}
		inv := sys.VGInvocations()
		fmt.Printf("%-24s recomputed %2d/%d weeks (%3.0f%%), %8d VG invocations (%.1f%% of first), %v\n",
			label+":", g.Stats.Recomputed, g.Stats.Points, 100*g.Stats.RecomputedFraction(),
			inv, 100*float64(inv)/float64(firstInv), g.Stats.Elapsed.Round(time.Millisecond))
		return nil
	}
	if err := adjust("move @purchase1 16→24", "purchase1", 24); err != nil {
		return err
	}
	if err := adjust("move @purchase2 32→40", "purchase2", 40); err != nil {
		return err
	}
	if err := adjust("move @feature 36→12", "feature", 12); err != nil {
		return err
	}
	if err := adjust("revisit @feature 12→36", "feature", 36); err != nil {
		return err
	}
	return nil
}

// runE3 measures §3.3: the offline sweep with and without fingerprints —
// VG invocations, wall time and agreement of the optimization outcome.
func runE3(ctx context.Context, worlds, step int) error {
	section("E3 — §3.3: offline optimization, naive vs fingerprint reuse")
	src := sweepScenario(step, 0.05)

	type outcome struct {
		inv      int64
		elapsed  time.Duration
		feasible int
		best     string
		bestVal  float64
		counts   map[string]int
		points   int
	}
	run := func(disable bool) (outcome, error) {
		sys, err := demoSystem()
		if err != nil {
			return outcome{}, err
		}
		scn, err := sys.Compile(src)
		if err != nil {
			return outcome{}, err
		}
		res, err := scn.Optimize(ctx, nil, fp.WithConfig(fp.Config{Worlds: worlds, DisableReuse: disable}))
		if err != nil {
			return outcome{}, err
		}
		o := outcome{
			inv:     sys.VGInvocations(),
			elapsed: res.Elapsed,
			counts:  res.ReuseCounts,
			points:  res.PointsEvaluated,
		}
		for _, r := range res.Rows {
			if r.Feasible {
				o.feasible++
			}
		}
		for _, b := range res.Best {
			o.best += fmt.Sprintf("(feature=%v purchase1=%v purchase2=%v) ",
				b.Group["feature"], b.Group["purchase1"], b.Group["purchase2"])
			o.bestVal = b.Metrics["MAX(EXPECT(overload))"]
		}
		return o, nil
	}

	naive, err := run(true)
	if err != nil {
		return err
	}
	fmt.Printf("naive sweep:       %9d VG invocations, %8v, %d points\n",
		naive.inv, naive.elapsed.Round(time.Millisecond), naive.points)
	reuse, err := run(false)
	if err != nil {
		return err
	}
	fmt.Printf("fingerprint sweep: %9d VG invocations, %8v, %d points, outcomes %v\n",
		reuse.inv, reuse.elapsed.Round(time.Millisecond), reuse.points, reuse.counts)
	fmt.Printf("savings: %.1fx fewer VG invocations, %.1fx faster\n",
		float64(naive.inv)/float64(reuse.inv),
		float64(naive.elapsed)/float64(reuse.elapsed))
	fmt.Printf("feasible groups: naive %d, fingerprint %d\n", naive.feasible, reuse.feasible)
	fmt.Printf("optimum (naive):       %s maxOverload=%.4f\n", naive.best, naive.bestVal)
	fmt.Printf("optimum (fingerprint): %s maxOverload=%.4f\n", reuse.best, reuse.bestVal)
	if naive.best == reuse.best {
		fmt.Printf("decision: IDENTICAL under reuse (metric estimate differs by %.4f — see E4 on probe-length risk)\n",
			math.Abs(naive.bestVal-reuse.bestVal))
	} else {
		fmt.Println("decision: DIFFERS under reuse (see E4 on probe-length risk)")
	}
	return nil
}

// runE4 ablates the fingerprint length k: reuse rate versus estimate error
// introduced by wrongly accepted mappings (the event-window minority-mode
// risk documented in DESIGN.md).
func runE4(ctx context.Context, worlds int) error {
	section("E4 — ablation: fingerprint length k vs reuse rate and estimate error")
	reg := vg.NewRegistry()
	if err := vg.RegisterBuiltins(reg); err != nil {
		return err
	}
	if err := models.RegisterDefaults(reg); err != nil {
		return err
	}
	src := sweepScenario(8, 0.05)
	scn, err := scenario.Compile(src, reg)
	if err != nil {
		return err
	}

	// Ground truth E[overload] per point, simulated directly.
	direct := mc.NewEvaluator(scn, mc.Options{Worlds: worlds})
	type pt struct{ w, p1, p2 int64 }
	var pts []pt
	for w := int64(0); w < 53; w += 1 {
		for _, p1 := range []int64{0, 8, 16} {
			pts = append(pts, pt{w, p1, 32})
		}
	}
	truth := make(map[pt]float64, len(pts))
	for _, p := range pts {
		res, err := direct.EvaluatePoint(ctx, guide.Point{
			"current": value.Int(p.w), "purchase1": value.Int(p.p1),
			"purchase2": value.Int(p.p2), "feature": value.Int(36),
		})
		if err != nil {
			return err
		}
		var m stats.Moments
		for _, x := range res.Columns["overload"] {
			m.Add(x)
		}
		truth[p] = m.Mean()
	}

	fmt.Println("  k   probe cost   reuse rate   max |err|   mean |err|")
	for _, k := range []int{4, 8, 16, 32, 64} {
		cfg := core.DefaultConfig()
		cfg.Length = k
		reuse, err := mc.NewReuse(cfg, storage.Options{})
		if err != nil {
			return err
		}
		ev := mc.NewEvaluator(scn, mc.Options{Worlds: worlds, Reuse: reuse})
		var maxErr, sumErr float64
		for _, p := range pts {
			res, err := ev.EvaluatePoint(ctx, guide.Point{
				"current": value.Int(p.w), "purchase1": value.Int(p.p1),
				"purchase2": value.Int(p.p2), "feature": value.Int(36),
			})
			if err != nil {
				return err
			}
			var m stats.Moments
			for _, x := range res.Columns["overload"] {
				m.Add(x)
			}
			errAbs := math.Abs(m.Mean() - truth[p])
			sumErr += errAbs
			if errAbs > maxErr {
				maxErr = errAbs
			}
		}
		counts := reuse.Counts()
		total := 0
		reused := 0
		for kind, n := range counts {
			total += n
			if kind == mc.Identity || kind == mc.Affine || kind == mc.CachedExact {
				reused += n
			}
		}
		rate := 0.0
		if total > 0 {
			rate = float64(reused) / float64(total)
		}
		fmt.Printf("%3d   %10.1f%%   %9.0f%%   %9.4f   %10.5f\n",
			k, 100*float64(k)/float64(worlds), 100*rate, maxErr, sumErr/float64(len(pts)))
	}
	fmt.Println("\nprobe cost is per candidate point; errors are vs direct simulation")
	fmt.Println("of E[overload]. Short fingerprints accept wrong mappings inside")
	fmt.Println("stochastic arrival windows (minority-mode worlds); k=32 keeps the")
	fmt.Println("max error near Monte Carlo noise while still probing only a small")
	fmt.Println("fraction of the worlds.")
	return nil
}

// runE5 exercises the Markov-chain analyzer of §2: fingerprints of
// consecutive capacity-chain steps reveal regions that a composed affine
// estimator can skip; the estimator's jump accuracy is validated against
// direct simulation.
func runE5() error {
	section("E5 — ablation: Markovian analysis of the capacity chain")
	cm := models.NewCapacityModel(models.DefaultCapacityConfig())
	cfg := core.DefaultConfig()
	seeds := cfg.Seeds()

	for _, schedule := range [][2]int{{16, 32}, {8, 40}, {52, 52}} {
		p1, p2 := schedule[0], schedule[1]
		chain := make([][]float64, models.Weeks)
		series := make([][]float64, len(seeds))
		for i, s := range seeds {
			series[i] = cm.Series(s, p1, p2)
		}
		for w := 0; w < models.Weeks; w++ {
			row := make([]float64, len(seeds))
			for i := range seeds {
				row[i] = series[i][w]
			}
			chain[w] = row
		}
		est, err := core.AnalyzeChain(cfg, chain)
		if err != nil {
			return err
		}
		fmt.Printf("\npurchases at (%d, %d): %d regions, %d/%d transitions skippable (%.0f%%)\n",
			p1, p2, len(est.Regions), est.SkippableSteps(), models.Weeks-1, 100*est.SkipFraction())
		for _, r := range est.Regions {
			fmt.Printf("  region weeks %2d..%2d: x_%d ≈ %.4f·x_%d %+0.1f (max step residual %.2g)\n",
				r.Start, r.End, r.End, r.Fit.A, r.Start, r.Fit.B, r.MaxStepResidual)
		}
		// Validate jumps on fresh worlds.
		probe := core.Config{Length: 16, SeedBase: 99, IdentityTol: cfg.IdentityTol, AffineTol: cfg.AffineTol}
		var maxRel float64
		for _, s := range probe.Seeds() {
			full := cm.Series(s, p1, p2)
			for _, r := range est.Regions {
				_, y, ok := est.Jump(r.Start, full[r.Start])
				if !ok {
					continue
				}
				rel := math.Abs(y-full[r.End]) / math.Max(1, math.Abs(full[r.End]))
				if rel > maxRel {
					maxRel = rel
				}
			}
		}
		fmt.Printf("  jump accuracy on 16 fresh worlds: max relative error %.4f\n", maxRel)
	}
	fmt.Println("\nThe regions break exactly at the stochastic purchase-arrival windows")
	fmt.Println("(\"the nondeterministic date when new hardware comes online\", §2); a")
	fmt.Println("schedule with no purchases (52, 52) yields a single year-long region.")
	return nil
}
