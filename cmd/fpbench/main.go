// Command fpbench regenerates every figure and measurable claim of the
// Fuzzy Prophet paper (SIGMOD 2011 demonstration). See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// outcomes.
//
//	fpbench -exp all            # run everything
//	fpbench -exp fig3 -worlds 400
//
// Experiments:
//
//	fig2   Figure 2: the example scenario parses verbatim and compiles
//	fig3   Figure 3: the online interface graph (per-week series + chart)
//	fig4   Figure 4: 2-D slice of fingerprint mappings for the Capacity model
//	e1     §3.2: time to first accurate statistics, cold vs warm session
//	e2     §3.2: fraction of the graph recomputed after slider adjustments
//	e3     §3.3: offline sweep, naive vs fingerprint (invocations, time, optimum)
//	e4     ablation: fingerprint length k vs reuse rate and estimate error
//	e5     ablation: Markovian non-Markovian estimators on the capacity chain
//	engine row vs vectorized SQL engine on the five example scenarios'
//	       1000-world render path; writes BENCH_engine.json (see -engineworlds, -out)
//	storage hot-hit vs mapped spill-tier hit vs re-simulate basis access,
//	       plus demotion/promotion throughput; writes BENCH_storage.json
//	trace  render tracing overhead: untraced vs traced render, and the
//	       disabled-path span ops (with -check: must be 0 allocs/op and
//	       under 2% of an untraced render)
//	wire   shard wire protocol v1 vs v2: bytes per shard exchange for
//	       full-payload vs fingerprint-only requests and per-world vs
//	       sketch-only responses; writes BENCH_wire.json and asserts the
//	       sketch-only response shrink exceeds 10x at -wireworlds worlds
//	resilience hedged vs unhedged evaluate tails with a straggling worker,
//	       hedge win rate, and the load-shed rate under a concurrency cap;
//	       writes BENCH_resilience.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fuzzyprophet/internal/buildinfo"
	"fuzzyprophet/internal/cli"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: fig2|fig3|fig4|e1|e2|e3|e4|e5|engine|shard|storage|trace|wire|resilience|all")
		worlds       = flag.Int("worlds", 300, "Monte Carlo worlds per point")
		step         = flag.Int("step", 8, "purchase-date grid step for sweep experiments")
		engineWorlds = flag.Int("engineworlds", 1000, "worlds for the engine render benchmark")
		benchOut     = flag.String("out", "BENCH_engine.json", "output path for the engine benchmark JSON (with -check: the baseline to compare against)")
		benchCheck   = flag.Bool("check", false, "engine experiment only: compare against the committed baseline instead of writing; exit non-zero on >20% regression")
		shardWorlds  = flag.Int("shardworlds", 100000, "worlds for the shard-scaling benchmark")
		shardOut     = flag.String("shardout", "BENCH_shard.json", "output path for the shard benchmark JSON")
		storageOut   = flag.String("storageout", "BENCH_storage.json", "output path for the storage benchmark JSON")
		wireWorlds   = flag.Int("wireworlds", 100000, "worlds for the wire-protocol benchmark")
		wireOut      = flag.String("wireout", "BENCH_wire.json", "output path for the wire-protocol benchmark JSON")
		resilOut     = flag.String("resilienceout", "BENCH_resilience.json", "output path for the resilience benchmark JSON")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("fpbench"))
		return
	}

	// Ctrl-C cancels the context; the simulation loops check it per
	// world-batch, so even the big sweep experiments abort in milliseconds.
	ctx, stop := cli.SignalContext()
	defer stop()

	runs := map[string]func(context.Context, int, int) error{
		"fig2": func(ctx context.Context, w, s int) error { return runFig2() },
		"fig3": func(ctx context.Context, w, s int) error { return runFig3(ctx, w) },
		"fig4": func(ctx context.Context, w, s int) error { return runFig4(ctx, w, s) },
		"e1":   func(ctx context.Context, w, s int) error { return runE1(ctx, w) },
		"e2":   func(ctx context.Context, w, s int) error { return runE2(ctx, w) },
		"e3":   func(ctx context.Context, w, s int) error { return runE3(ctx, w, s) },
		"e4":   func(ctx context.Context, w, s int) error { return runE4(ctx, w) },
		"e5":   func(ctx context.Context, w, s int) error { return runE5() },
		"engine": func(ctx context.Context, w, s int) error {
			return runEngineBench(ctx, *engineWorlds, *benchOut, *benchCheck)
		},
		"shard": func(ctx context.Context, w, s int) error {
			return runShardBench(ctx, *shardWorlds, *shardOut)
		},
		"storage": func(ctx context.Context, w, s int) error {
			return runStorageBench(ctx, w, *storageOut)
		},
		"trace": func(ctx context.Context, w, s int) error {
			return runTraceBench(ctx, *engineWorlds, *benchCheck)
		},
		"wire": func(ctx context.Context, w, s int) error {
			return runWireBench(ctx, *wireWorlds, *wireOut)
		},
		"resilience": func(ctx context.Context, w, s int) error {
			return runResilienceBench(ctx, *resilOut)
		},
	}
	order := []string{"fig2", "fig3", "fig4", "e1", "e2", "e3", "e4", "e5", "engine", "shard", "storage", "trace", "wire", "resilience"}

	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = order
	}
	for _, name := range selected {
		fn, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "fpbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := fn(ctx, *worlds, *step); err != nil {
			if cli.ExitCode(err) == 130 {
				fmt.Fprintf(os.Stderr, "\nfpbench: %s cancelled\n", name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "fpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func section(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}
