package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"fuzzyprophet/internal/aggregate"
	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
)

// The shard experiment: in-process sharded world evaluation on a large
// render. One parameter point of the capacityplanning scenario is
// evaluated at shardWorlds Monte Carlo worlds with 1, 2, 4 and 8 shards
// (VG parallelism pinned to one worker per shard pool so the measurement
// isolates shard scaling), recording wall time and speedup over the
// single-shard run and asserting the stitched outputs stay bit-identical.
// Results are written as JSON (BENCH_shard.json) for CI artifact upload
// alongside the engine benchmark.

// shardBenchResult is one shard count's measurement.
type shardBenchResult struct {
	Shards  int     `json:"shards"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is single-shard ns / this ns.
	Speedup float64 `json:"speedup"`
	// Identical reports the stitched outputs matched the single-shard
	// render bit for bit.
	Identical bool `json:"identical"`
}

// shardBenchReport is the BENCH_shard.json schema.
type shardBenchReport struct {
	Benchmark string             `json:"benchmark"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	CPUs      int                `json:"cpus"`
	Scenario  string             `json:"scenario"`
	Worlds    int                `json:"worlds"`
	Results   []shardBenchResult `json:"results"`
	// SpeedupAt8 repeats the 8-shard speedup, the ROADMAP acceptance
	// number.
	SpeedupAt8 float64 `json:"speedup_at_8"`
}

// runShardBench is experiment "shard".
func runShardBench(ctx context.Context, worlds int, outPath string) error {
	section(fmt.Sprintf("SHARD: in-process sharded world evaluation (%d worlds, capacityplanning)", worlds))
	reg, err := benchfix.Registry()
	if err != nil {
		return err
	}
	scn, err := scenario.Compile(sqlparser.ExampleScenarios()["capacityplanning"], reg)
	if err != nil {
		return err
	}
	pt := scn.DefaultPoint()
	report := shardBenchReport{
		Benchmark: "shard-scaling",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Scenario:  "capacityplanning",
		Worlds:    worlds,
	}

	// measure runs one shard configuration (min of iters timings) and
	// returns the render for the identity check.
	measure := func(shards, iters int) (float64, *mc.PointResult, error) {
		ev := mc.NewEvaluator(scn, mc.Options{Worlds: worlds, Workers: 1, Shards: shards})
		var best float64 = math.Inf(1)
		var res *mc.PointResult
		for i := 0; i < iters; i++ {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			start := time.Now()
			r, err := ev.EvaluatePoint(ctx, pt)
			if err != nil {
				return 0, nil, err
			}
			if ns := float64(time.Since(start).Nanoseconds()); ns < best {
				best = ns
			}
			res = r
		}
		return best, res, nil
	}

	if report.CPUs < 2 {
		fmt.Printf("note: %d CPU(s) available — shard scaling needs cores; expect ~1x speedups here\n", report.CPUs)
	}
	fmt.Printf("%-8s %14s %10s %10s\n", "shards", "ns/op", "speedup", "identical")
	var baseNs float64
	var baseRes *mc.PointResult
	for _, shards := range []int{1, 2, 4, 8} {
		ns, res, err := measure(shards, 3)
		if err != nil {
			return err
		}
		identical := true
		if shards == 1 {
			baseNs, baseRes = ns, res
		} else {
			identical = sameColumns(baseRes, res)
		}
		r := shardBenchResult{
			Shards:    shards,
			NsPerOp:   ns,
			Speedup:   baseNs / ns,
			Identical: identical,
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-8d %14.0f %9.2fx %10v\n", shards, ns, r.Speedup, identical)
		if !identical {
			return fmt.Errorf("shard bench: %d-shard render is not bit-identical to the single-range render", shards)
		}
		if shards == 8 {
			report.SpeedupAt8 = r.Speedup
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (speedup at 8 shards: %.2fx)\n", outPath, report.SpeedupAt8)
	return nil
}

// sameColumns reports bitwise equality of two renders' output vectors.
func sameColumns(a, b *mc.PointResult) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for col, av := range a.Columns {
		bv, ok := b.Columns[col]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
				return false
			}
		}
	}
	// The merged sketches must agree with a direct fold on the moments.
	for col, cs := range b.Sketches {
		direct := aggregate.NewColumnStats()
		direct.AddAll(a.Columns[col])
		if cs.Count() != direct.Count() {
			return false
		}
		if math.Abs(cs.Expect()-direct.Expect()) > 1e-9*math.Max(1, math.Abs(direct.Expect())) {
			return false
		}
	}
	return true
}
