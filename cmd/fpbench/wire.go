package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/rng"
	"fuzzyprophet/internal/server"
	"fuzzyprophet/internal/server/protocoltest"
	"fuzzyprophet/internal/sqlparser"
)

// The wire experiment: bytes on the wire per shard exchange, v1 versus v2.
// A real coordinator drives a real worker over loopback HTTP through the
// protocoltest byte-counting proxy. The v1 cost model is the full-payload
// request a pre-v2 coordinator sent with EVERY shard (script + side tables
// + bindings) and the full per-world response vectors; v2's steady state is
// the fingerprint-only request, and its sketch-only mode replaces the
// O(worlds) response with O(compression) merged sketches. The headline
// number — response shrink with sketch_only at 10^5 worlds — is asserted
// to exceed 10x, matching the wire-protocol acceptance bar.

// wireBenchReport is the BENCH_wire.json schema.
type wireBenchReport struct {
	Benchmark string `json:"benchmark"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Scenario  string `json:"scenario"`
	Worlds    int    `json:"worlds"`
	Points    int    `json:"points"`
	// Requests: bytes per shard request. Full is what protocol v1 shipped
	// with every shard; slim is v2's steady state.
	RequestFullBytes int     `json:"request_full_bytes"`
	RequestSlimBytes int     `json:"request_slim_bytes"`
	RequestReduction float64 `json:"request_reduction"`
	// Responses: bytes per shard response. Full carries per-world sample
	// vectors; sketch carries merged moments + t-digest centroids.
	ResponseFullBytes   int     `json:"response_full_bytes"`
	ResponseSketchBytes int     `json:"response_sketch_bytes"`
	ResponseReduction   float64 `json:"response_reduction"`
	// SlimFraction is the share of steady-state shard requests that carried
	// no script payload (everything after the one-time warm-up re-send).
	SlimFraction float64 `json:"slim_fraction"`
	// Elapsed wall time of the full-mode and sketch-mode evaluations.
	FullMs   float64 `json:"full_ms"`
	SketchMs float64 `json:"sketch_ms"`
}

// newWireSystem builds a System that can run the bundled example
// scenarios: demo models plus the OrderVolume VG (same shape as the
// benchfix registry, expressed through the public API).
func newWireSystem() (*fp.System, error) {
	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		return nil, err
	}
	err = sys.RegisterVG("OrderVolume", 2, func(seed uint64, args []float64) (float64, error) {
		src := rng.New(seed)
		base := 1800 + 40*args[0] + 2*args[1]
		return float64(src.Poisson(base)) * (1 + 0.05*src.Norm()), nil
	})
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// wireCall performs one JSON request against the coordinator.
func wireCall(ctx context.Context, method, url string, in, out any) error {
	var rd io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s %s: %d: %s", method, url, resp.StatusCode, body)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

// runWireBench is experiment "wire".
func runWireBench(ctx context.Context, worlds int, outPath string) error {
	const scenarioName = "capacityplanning"
	section(fmt.Sprintf("WIRE: shard protocol v1 vs v2 bytes per exchange (%d worlds, %s)", worlds, scenarioName))

	sysW, err := newWireSystem()
	if err != nil {
		return err
	}
	sysC, err := newWireSystem()
	if err != nil {
		return err
	}

	worker, err := server.New(server.Config{System: sysW, WorkerMode: true})
	if err != nil {
		return err
	}
	defer worker.Close()
	wts := httptest.NewServer(worker)
	defer wts.Close()

	proxy := protocoltest.New(wts.URL)
	defer proxy.Close()

	coord, err := server.New(server.Config{
		System:        sysC,
		Workers:       []string{proxy.URL()},
		DefaultWorlds: worlds,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	cts := httptest.NewServer(coord)
	defer cts.Close()

	// Register the scenario and pick three parameter points off its grid.
	var scn struct {
		ID     string `json:"id"`
		Params []struct {
			Name   string `json:"name"`
			Values []any  `json:"values"`
		} `json:"params"`
	}
	reg := map[string]any{"sql": sqlparser.ExampleScenarios()[scenarioName]}
	if err := wireCall(ctx, "POST", cts.URL+"/scenarios", reg, &scn); err != nil {
		return err
	}
	var points []map[string]any
	for k := 0; k < 3; k++ {
		pt := make(map[string]any, len(scn.Params))
		for _, p := range scn.Params {
			i := k
			if i >= len(p.Values) {
				i = len(p.Values) - 1
			}
			pt[p.Name] = p.Values[i]
		}
		points = append(points, pt)
	}

	evaluate := func(sketchOnly bool) (time.Duration, error) {
		req := map[string]any{"points": points, "worlds": worlds, "sketch_only": sketchOnly}
		start := time.Now()
		err := wireCall(ctx, "POST", cts.URL+"/scenarios/"+scn.ID+"/evaluate", req, nil)
		return time.Since(start), err
	}

	report := wireBenchReport{
		Benchmark: "wire-protocol-v2",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Scenario:  scenarioName,
		Worlds:    worlds,
		Points:    len(points),
	}

	// Full-response mode: the first shard request is the one-time warm-up
	// re-send (v1's per-shard cost); the rest are v2 steady state.
	fullElapsed, err := evaluate(false)
	if err != nil {
		return err
	}
	report.FullMs = float64(fullElapsed.Microseconds()) / 1000
	var slimCount, slimBytes, fullCount, fullBytes, respBytes, respCount int
	for _, e := range proxy.ShardExchanges() {
		if e.HasSQLPayload() {
			fullCount++
			fullBytes += e.RequestBytes
		} else {
			slimCount++
			slimBytes += e.RequestBytes
		}
		if e.Status == http.StatusOK {
			respCount++
			respBytes += e.ResponseBytes
		}
	}
	if fullCount == 0 || slimCount == 0 || respCount == 0 {
		return fmt.Errorf("wire bench: degenerate exchange mix (full=%d slim=%d ok=%d)", fullCount, slimCount, respCount)
	}
	report.RequestFullBytes = fullBytes / fullCount
	report.RequestSlimBytes = slimBytes / slimCount
	report.RequestReduction = float64(report.RequestFullBytes) / float64(report.RequestSlimBytes)
	report.ResponseFullBytes = respBytes / respCount
	report.SlimFraction = float64(slimCount) / float64(slimCount+fullCount)

	// Sketch-only mode: the worker cache is warm, so every request is slim
	// and every response is merged sketches instead of sample vectors.
	proxy.Reset()
	sketchElapsed, err := evaluate(true)
	if err != nil {
		return err
	}
	report.SketchMs = float64(sketchElapsed.Microseconds()) / 1000
	respBytes, respCount = 0, 0
	for _, e := range proxy.ShardExchanges() {
		if e.HasSQLPayload() {
			return fmt.Errorf("wire bench: sketch-only steady state sent a full payload (%d bytes)", e.RequestBytes)
		}
		if e.Status == http.StatusOK {
			respCount++
			respBytes += e.ResponseBytes
		}
	}
	if respCount == 0 {
		return fmt.Errorf("wire bench: no successful sketch-only exchanges")
	}
	report.ResponseSketchBytes = respBytes / respCount
	report.ResponseReduction = float64(report.ResponseFullBytes) / float64(report.ResponseSketchBytes)

	fmt.Printf("%-34s %14s %14s %10s\n", "", "v1/full", "v2", "shrink")
	fmt.Printf("%-34s %14d %14d %9.1fx\n", "request bytes/shard", report.RequestFullBytes, report.RequestSlimBytes, report.RequestReduction)
	fmt.Printf("%-34s %14d %14d %9.1fx\n", "response bytes/shard (sketch_only)", report.ResponseFullBytes, report.ResponseSketchBytes, report.ResponseReduction)
	fmt.Printf("%-34s %14.1f %14.1f\n", "evaluate wall ms", report.FullMs, report.SketchMs)
	fmt.Printf("steady-state slim fraction: %.2f (the single full exchange is the one-time warm-up)\n", report.SlimFraction)

	if report.ResponseReduction <= 10 {
		return fmt.Errorf("wire bench: sketch-only response shrink %.1fx at %d worlds, want > 10x",
			report.ResponseReduction, worlds)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (sketch-only response shrink: %.1fx)\n", outPath, report.ResponseReduction)
	return nil
}
