package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
)

// The engine experiment: the 1000-world render path — executing the Query
// Generator's pure TSQL over a materialized possible-worlds table — timed
// on the legacy row-at-a-time engine versus the vectorized columnar engine,
// for each of the five bundled example scenarios. Results are printed as a
// table and written as JSON (BENCH_engine.json) for CI artifact upload and
// the README's performance section.

// engineBenchResult is one scenario's row-vs-vectorized measurement.
type engineBenchResult struct {
	Scenario          string  `json:"scenario"`
	Worlds            int     `json:"worlds"`
	RowNsPerOp        float64 `json:"row_ns_per_op"`
	VectorizedNsPerOp float64 `json:"vectorized_ns_per_op"`
	Speedup           float64 `json:"speedup"`
}

// engineBenchReport is the BENCH_engine.json schema.
type engineBenchReport struct {
	Benchmark string              `json:"benchmark"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	CPUs      int                 `json:"cpus"`
	Worlds    int                 `json:"worlds"`
	Results   []engineBenchResult `json:"results"`
}

// materializeWorlds simulates every VG call site at the scenario's default
// point with the Monte Carlo executor's world-seed derivation
// (mc.WorldSeed under the default seed base), producing the columnar
// possible-worlds table the render path executes over.
func materializeWorlds(ctx context.Context, scn *scenario.Scenario, worlds int) (*sqlengine.ColTable, error) {
	cols := []string{scenario.WorldColumn}
	ord := make([]int64, worlds)
	for i := range ord {
		ord[i] = int64(i)
	}
	columns := []*sqlengine.Column{sqlengine.IntColumn(ord)}
	pt := scn.DefaultPoint()
	for si := range scn.Sites {
		site := &scn.Sites[si]
		args, _, err := site.ArgValues(pt)
		if err != nil {
			return nil, err
		}
		samples := make([]float64, worlds)
		for i := 0; i < worlds; i++ {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			seed := mc.WorldSeed(mc.DefaultSeedBase, site.ID, i)
			v, err := scn.Registry.Invoke(site.Name, seed, args)
			if err != nil {
				return nil, err
			}
			samples[i], err = v.AsFloat()
			if err != nil {
				return nil, err
			}
		}
		cols = append(cols, site.Column)
		columns = append(columns, sqlengine.FloatColumn(samples))
	}
	return sqlengine.NewColTable(scenario.WorldsTable, cols, columns)
}

// timeEngine measures ns/op of one execution mode, running at least
// minIters iterations and at least minDur of wall clock.
func timeEngine(ctx context.Context, run func() error) (float64, error) {
	const (
		minIters = 20
		minDur   = 200 * time.Millisecond
	)
	// Warm up (catalog columnar conversions, allocator).
	if err := run(); err != nil {
		return 0, err
	}
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < minDur {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := run(); err != nil {
			return 0, err
		}
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// runEngineBench is experiment "engine": before/after render benchmarks on
// the five example scenarios, written to outPath.
func runEngineBench(ctx context.Context, worlds int, outPath string) error {
	section(fmt.Sprintf("ENGINE: row vs vectorized render path (%d worlds)", worlds))
	reg, err := benchfix.Registry()
	if err != nil {
		return err
	}
	report := engineBenchReport{
		Benchmark: "engine-render",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Worlds:    worlds,
	}
	fmt.Printf("%-20s %14s %14s %9s\n", "scenario", "row ns/op", "vec ns/op", "speedup")
	for _, name := range sqlparser.ExampleScenarioNames() {
		src := sqlparser.ExampleScenarios()[name]
		scn, err := scenario.Compile(src, reg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				return err
			}
			if err := scn.AddTable(regions); err != nil {
				return err
			}
		}
		sql, err := scn.GenerateSQL(scn.DefaultPoint())
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		script, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("%s: generated SQL does not parse: %w", name, err)
		}
		worldsTable, err := materializeWorlds(ctx, scn, worlds)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		mkEngine := func(rowMode bool) *sqlengine.Engine {
			cat := sqlengine.NewCatalog()
			for _, t := range scn.StaticTables {
				cat.Put(t)
			}
			cat.PutColumns(worldsTable)
			e := sqlengine.New(cat)
			e.RowMode = rowMode
			return e
		}
		rowEngine := mkEngine(true)
		rowNs, err := timeEngine(ctx, func() error {
			_, err := rowEngine.ExecScript(script, nil)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s (row): %w", name, err)
		}
		vecEngine := mkEngine(false)
		vecNs, err := timeEngine(ctx, func() error {
			_, err := vecEngine.ExecScriptColumnar(script, nil)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s (vectorized): %w", name, err)
		}
		r := engineBenchResult{
			Scenario:          name,
			Worlds:            worlds,
			RowNsPerOp:        rowNs,
			VectorizedNsPerOp: vecNs,
			Speedup:           rowNs / vecNs,
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-20s %14.0f %14.0f %8.1fx\n", name, rowNs, vecNs, r.Speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}
