package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlengine"
	"fuzzyprophet/internal/sqlparser"
)

// The engine experiment: the 1000-world render path — executing the Query
// Generator's pure TSQL over a materialized possible-worlds table — timed
// on the legacy row-at-a-time engine, the interpreted vectorized engine,
// and the compiled-plan path, for each of the five bundled example
// scenarios. Besides ns/op, the vectorized and compiled paths report
// allocs/op and bytes/op, so the plans' buffer-reuse win is tracked, not
// just raw latency. Results are printed as a table and written as JSON
// (BENCH_engine.json) for CI artifact upload, the README's performance
// section, and the -check regression gate.

// engineBenchResult is one scenario's measurement across the three paths.
type engineBenchResult struct {
	Scenario          string  `json:"scenario"`
	Worlds            int     `json:"worlds"`
	RowNsPerOp        float64 `json:"row_ns_per_op"`
	VectorizedNsPerOp float64 `json:"vectorized_ns_per_op"`
	CompiledNsPerOp   float64 `json:"compiled_ns_per_op"`
	// Speedup is row/vectorized (the PR 3 metric, kept for continuity);
	// CompiledSpeedup is vectorized/compiled — the compiled plans' win over
	// the interpreted vectorized baseline.
	Speedup         float64 `json:"speedup"`
	CompiledSpeedup float64 `json:"compiled_speedup"`
	// Allocation profiles of the two columnar paths (the row path's boxed
	// allocations are not worth tracking).
	VectorizedAllocsPerOp float64 `json:"vectorized_allocs_per_op"`
	VectorizedBytesPerOp  float64 `json:"vectorized_bytes_per_op"`
	CompiledAllocsPerOp   float64 `json:"compiled_allocs_per_op"`
	CompiledBytesPerOp    float64 `json:"compiled_bytes_per_op"`
}

// engineBenchReport is the BENCH_engine.json schema.
type engineBenchReport struct {
	Benchmark string              `json:"benchmark"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	CPUs      int                 `json:"cpus"`
	Worlds    int                 `json:"worlds"`
	Results   []engineBenchResult `json:"results"`
}

// materializeWorlds simulates every VG call site at the scenario's default
// point with the Monte Carlo executor's world-seed derivation
// (mc.WorldSeed under the default seed base), producing the columnar
// possible-worlds table the render path executes over.
func materializeWorlds(ctx context.Context, scn *scenario.Scenario, worlds int) (*sqlengine.ColTable, error) {
	cols := []string{scenario.WorldColumn}
	ord := make([]int64, worlds)
	for i := range ord {
		ord[i] = int64(i)
	}
	columns := []*sqlengine.Column{sqlengine.IntColumn(ord)}
	pt := scn.DefaultPoint()
	for si := range scn.Sites {
		site := &scn.Sites[si]
		args, _, err := site.ArgValues(pt)
		if err != nil {
			return nil, err
		}
		samples := make([]float64, worlds)
		for i := 0; i < worlds; i++ {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			seed := mc.WorldSeed(mc.DefaultSeedBase, site.ID, i)
			v, err := scn.Registry.Invoke(site.Name, seed, args)
			if err != nil {
				return nil, err
			}
			samples[i], err = v.AsFloat()
			if err != nil {
				return nil, err
			}
		}
		cols = append(cols, site.Column)
		columns = append(columns, sqlengine.FloatColumn(samples))
	}
	return sqlengine.NewColTable(scenario.WorldsTable, cols, columns)
}

// timeEngine measures ns/op, allocs/op and bytes/op of one execution mode,
// running at least minIters iterations and at least minDur of wall clock.
// Allocation counters come from runtime.MemStats deltas over the
// single-goroutine timing loop.
func timeEngine(ctx context.Context, run func() error, minIters int, minDur time.Duration) (nsPerOp, allocsPerOp, bytesPerOp float64, err error) {
	// Warm up (catalog columnar conversions, plan buffer pools).
	if err := run(); err != nil {
		return 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < minDur {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
		if err := run(); err != nil {
			return 0, 0, 0, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	return nsPerOp, allocsPerOp, bytesPerOp, nil
}

// runEngineBench is experiment "engine": render benchmarks for the three
// execution paths on the five example scenarios. With check=false the
// report is written to outPath; with check=true outPath is instead read as
// the committed baseline and the run fails when a render path regressed
// more than 20% against it (the CI bench regression gate).
func runEngineBench(ctx context.Context, worlds int, outPath string, check bool) error {
	section(fmt.Sprintf("ENGINE: row vs vectorized vs compiled render path (%d worlds)", worlds))
	reg, err := benchfix.Registry()
	if err != nil {
		return err
	}
	// Gate runs measure longer: the -check thresholds must not flake on a
	// noisy shared CI runner, so each path gets more iterations and wall
	// clock than an informational run does.
	minIters, minDur := 20, 200*time.Millisecond
	if check {
		minIters, minDur = 50, 600*time.Millisecond
	}
	report := engineBenchReport{
		Benchmark: "engine-render",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Worlds:    worlds,
	}
	fmt.Printf("%-16s %12s %12s %12s %8s %8s %11s %11s\n",
		"scenario", "row ns/op", "vec ns/op", "plan ns/op", "r/v", "v/p", "vec allocs", "plan allocs")
	for _, name := range sqlparser.ExampleScenarioNames() {
		src := sqlparser.ExampleScenarios()[name]
		scn, err := scenario.Compile(src, reg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				return err
			}
			if err := scn.AddTable(regions); err != nil {
				return err
			}
		}
		sql, err := scn.GenerateSQL(scn.DefaultPoint())
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		script, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("%s: generated SQL does not parse: %w", name, err)
		}
		worldsTable, err := materializeWorlds(ctx, scn, worlds)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		mkEngine := func(rowMode bool) *sqlengine.Engine {
			cat := sqlengine.NewCatalog()
			for _, t := range scn.StaticTables {
				cat.Put(t)
			}
			cat.PutColumns(worldsTable)
			e := sqlengine.New(cat)
			e.RowMode = rowMode
			return e
		}
		rowEngine := mkEngine(true)
		rowNs, _, _, err := timeEngine(ctx, func() error {
			_, err := rowEngine.ExecScript(script, nil)
			return err
		}, minIters, minDur)
		if err != nil {
			return fmt.Errorf("%s (row): %w", name, err)
		}
		vecEngine := mkEngine(false)
		vecNs, vecAllocs, vecBytes, err := timeEngine(ctx, func() error {
			_, err := vecEngine.ExecScriptColumnar(script, nil)
			return err
		}, minIters, minDur)
		if err != nil {
			return fmt.Errorf("%s (vectorized): %w", name, err)
		}
		// The compiled path executes the same generated TSQL via a plan
		// compiled once — the scenario render loop's configuration.
		plan := sqlengine.CompileScript(script)
		planEngine := mkEngine(false)
		planNs, planAllocs, planBytes, err := timeEngine(ctx, func() error {
			res, err := plan.Exec(planEngine, nil)
			if err != nil {
				return err
			}
			res.Release()
			return nil
		}, minIters, minDur)
		if err != nil {
			return fmt.Errorf("%s (compiled): %w", name, err)
		}
		r := engineBenchResult{
			Scenario:              name,
			Worlds:                worlds,
			RowNsPerOp:            rowNs,
			VectorizedNsPerOp:     vecNs,
			CompiledNsPerOp:       planNs,
			Speedup:               rowNs / vecNs,
			CompiledSpeedup:       vecNs / planNs,
			VectorizedAllocsPerOp: vecAllocs,
			VectorizedBytesPerOp:  vecBytes,
			CompiledAllocsPerOp:   planAllocs,
			CompiledBytesPerOp:    planBytes,
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-16s %12.0f %12.0f %12.0f %7.1fx %7.1fx %11.1f %11.1f\n",
			name, rowNs, vecNs, planNs, r.Speedup, r.CompiledSpeedup, vecAllocs, planAllocs)
	}
	if check {
		return checkEngineBaseline(outPath, &report)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}

// checkEngineBaseline compares a fresh run against the committed baseline.
// The gate compares MACHINE-NORMALIZED ratios — each columnar path's
// speedup over the row engine measured in the same process — so a slower
// CI runner does not trip it; only a real relative regression of the
// vectorized or compiled path (>20%) does.
func checkEngineBaseline(baselinePath string, current *engineBenchReport) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench check: reading baseline: %w", err)
	}
	var baseline engineBenchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("bench check: parsing baseline %s: %w", baselinePath, err)
	}
	base := map[string]engineBenchResult{}
	for _, r := range baseline.Results {
		base[r.Scenario] = r
	}
	const tolerance = 0.8 // fail below 80% of the baseline ratio
	fmt.Printf("\nregression gate vs %s (fail below %.0f%% of baseline):\n", baselinePath, tolerance*100)
	failed := false
	for _, cur := range current.Results {
		b, ok := base[cur.Scenario]
		if !ok || b.RowNsPerOp == 0 {
			fmt.Printf("  %-16s no baseline entry, skipped\n", cur.Scenario)
			continue
		}
		type gate struct {
			name       string
			cur, floor float64
		}
		gates := []gate{
			{"row/vectorized", cur.RowNsPerOp / cur.VectorizedNsPerOp, (b.RowNsPerOp / b.VectorizedNsPerOp) * tolerance},
		}
		if b.CompiledNsPerOp > 0 && cur.CompiledNsPerOp > 0 {
			gates = append(gates, gate{"row/compiled", cur.RowNsPerOp / cur.CompiledNsPerOp, (b.RowNsPerOp / b.CompiledNsPerOp) * tolerance})
		}
		for _, g := range gates {
			status := "ok"
			if g.cur < g.floor {
				status = "REGRESSED"
				failed = true
			}
			fmt.Printf("  %-16s %-16s %8.1fx (floor %8.1fx)  %s\n", cur.Scenario, g.name, g.cur, g.floor, status)
		}
	}
	if failed {
		return fmt.Errorf("bench check: render path regressed >20%% against %s", baselinePath)
	}
	fmt.Println("bench check: no regression")
	return nil
}
