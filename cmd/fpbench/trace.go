package main

// The trace experiment: the CI gate behind BenchmarkTraceDisabledOverhead.
// Render tracing is threaded through the whole pipeline as nil-safe span
// calls, so a render with no span on the context must pay nothing for the
// instrumentation. Two properties are checked directly (with -check they
// are hard failures):
//
//  1. The disabled-path span operations allocate NOTHING: a render's worth
//     of nil-span calls measures 0 allocs/op via testing.AllocsPerRun.
//  2. The projected disabled-path overhead — the measured cost of those
//     nil calls against the measured cost of an untraced render — stays
//     under 2%.
//
// The traced render is also measured, informationally, so the cost of
// turning tracing ON stays visible in CI logs.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/obs"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
)

// disabledOps runs one render's worth of instrumentation calls against a
// context with no span: every call must take the nil fast path.
func disabledOps(ctx context.Context) {
	sp := obs.SpanFrom(ctx)
	// The per-point stage spans of mc.EvaluatePoint...
	psp := sp.Child("point")
	psp.SetInt("worlds", 1000)
	for _, stage := range []string{"simulate", "worlds-materialize", "plan-execute", "sketch-merge"} {
		ssp := psp.Child(stage)
		ssp.SetInt("sites", 8)
		ssp.SetStr("exec", "local")
		ssp.Note("spill-demote", time.Millisecond).SetInt("count", 1)
		obs.With(ctx, ssp)
		ssp.End()
	}
	psp.Graft(nil)
	psp.End()
}

// runTraceBench is experiment "trace": the tracing-off overhead gate.
func runTraceBench(ctx context.Context, worlds int, check bool) error {
	section(fmt.Sprintf("TRACE: disabled-path render overhead (%d worlds)", worlds))
	reg, err := benchfix.Registry()
	if err != nil {
		return err
	}
	name := sqlparser.ExampleScenarioNames()[0]
	scn, err := scenario.Compile(sqlparser.ExampleScenarios()[name], reg)
	if err != nil {
		return err
	}
	pt := scn.DefaultPoint()
	minIters, minDur := 20, 200*time.Millisecond
	if check {
		minIters, minDur = 50, 600*time.Millisecond
	}

	ev := mc.NewEvaluator(scn, mc.Options{Worlds: worlds})
	untracedNs, untracedAllocs, _, err := timeEngine(ctx, func() error {
		_, err := ev.EvaluatePoint(ctx, pt)
		return err
	}, minIters, minDur)
	if err != nil {
		return fmt.Errorf("untraced render: %w", err)
	}

	evT := mc.NewEvaluator(scn, mc.Options{Worlds: worlds})
	tracedNs, tracedAllocs, _, err := timeEngine(ctx, func() error {
		tr := obs.New("render", "")
		_, err := evT.EvaluatePoint(obs.With(ctx, tr.Root()), pt)
		tr.End()
		return err
	}, minIters, minDur)
	if err != nil {
		return fmt.Errorf("traced render: %w", err)
	}

	// The disabled instrumentation path in isolation: allocations must be
	// exactly zero, and its per-render cost negligible.
	bg := context.Background()
	opAllocs := testing.AllocsPerRun(10000, func() { disabledOps(bg) })
	opStart := time.Now()
	const opIters = 200000
	for i := 0; i < opIters; i++ {
		disabledOps(bg)
	}
	opNs := float64(time.Since(opStart).Nanoseconds()) / opIters
	overheadPct := opNs / untracedNs * 100

	fmt.Printf("%-28s %14.0f ns/op %10.1f allocs/op\n", "render untraced ("+name+")", untracedNs, untracedAllocs)
	fmt.Printf("%-28s %14.0f ns/op %10.1f allocs/op  (+%.1f%%)\n", "render traced", tracedNs, tracedAllocs, (tracedNs/untracedNs-1)*100)
	fmt.Printf("%-28s %14.1f ns/op %10.1f allocs/op  (%.4f%% of a render)\n", "disabled-path span ops", opNs, opAllocs, overheadPct)

	if check {
		if opAllocs != 0 {
			return fmt.Errorf("trace check: disabled-path span ops allocate (%.1f allocs/op, want 0)", opAllocs)
		}
		if overheadPct > 2 {
			return fmt.Errorf("trace check: disabled-path overhead %.2f%% of an untraced render (gate: 2%%)", overheadPct)
		}
		fmt.Println("trace check: 0 allocs/op, overhead within gate")
	}
	return nil
}
