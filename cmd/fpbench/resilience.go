package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"fuzzyprophet/internal/server"
	"fuzzyprophet/internal/server/protocoltest"
	"fuzzyprophet/internal/sqlparser"
)

// The resilience experiment: what the resilience layer buys under
// stragglers and overload.
//
// Part 1 (hedging): a coordinator fans a one-point evaluation out to two
// workers, one of which sits behind a protocoltest proxy that HANGS a
// seeded fraction of shard exchanges — a worker that is alive but never
// answers. Unhedged, the only escape is the per-attempt shard timeout, so
// every straggler trial pays it in full; hedged, a duplicate fires on the
// healthy worker after a fixed delay and the tail collapses. Both modes
// run the same seeded straggler schedule, with circuit breakers disabled
// so routing stays constant and the measurement isolates hedging. The
// hedge win rate is scraped from the coordinator's /metrics.
//
// Part 2 (load shedding): a local coordinator capped at a small
// -max-concurrent-renders takes a burst of concurrent budgeted
// evaluations; requests that cannot get a slot before their deadline-aware
// queue wait lapses are shed with 429 instead of piling up. The shed rate
// is reported alongside fpserver_renders_shed_total.

// resilienceBenchReport is the BENCH_resilience.json schema.
type resilienceBenchReport struct {
	Benchmark string `json:"benchmark"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Scenario  string `json:"scenario"`
	Worlds    int    `json:"worlds"`
	Trials    int    `json:"trials"`
	// StragglerP is the seeded probability a shard exchange through the
	// slow worker hangs until abandoned.
	StragglerP float64 `json:"straggler_p"`
	// ShardTimeoutMs is the per-attempt timeout — the unhedged worst case
	// per straggler.
	ShardTimeoutMs float64 `json:"shard_timeout_ms"`
	// HedgeMode is "adaptive-p95": the hedged runs use the production
	// default where the delay tracks the P95 of recent shard latencies.
	HedgeMode string `json:"hedge_mode"`

	UnhedgedP50Ms float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms   float64 `json:"hedged_p50_ms"`
	HedgedP99Ms   float64 `json:"hedged_p99_ms"`
	// P99Speedup is unhedged P99 / hedged P99 — the tail the hedge buys
	// back.
	P99Speedup float64 `json:"p99_speedup"`

	Hedges       int64   `json:"hedges"`
	HedgeWins    int64   `json:"hedge_wins"`
	HedgeWinRate float64 `json:"hedge_win_rate"`

	// Load-shedding burst: Offered concurrent renders against
	// MaxConcurrent slots, each with a QueueBudgetMs deadline.
	MaxConcurrent int `json:"max_concurrent"`
	Offered       int `json:"offered"`
	Completed     int `json:"completed"`
	Shed          int `json:"shed"`
	// DeadlineExpired counts requests admitted too late: their budget
	// expired mid-render (504) instead of being shed up front (429).
	DeadlineExpired int     `json:"deadline_expired"`
	ShedRate        float64 `json:"shed_rate"`
}

// scrapeCounter pulls one counter/gauge value out of a Prometheus text
// exposition.
func scrapeCounter(base, name string) (float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// percentileMs returns the p-th percentile (0-100) of the sorted samples,
// in milliseconds.
func percentileMs(samples []time.Duration, p int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := slices.Clone(samples)
	slices.Sort(sorted)
	idx := (len(sorted) - 1) * p / 100
	return float64(sorted[idx].Microseconds()) / 1000
}

// runResilienceBench is experiment "resilience".
func runResilienceBench(ctx context.Context, outPath string) error {
	const (
		scenarioName = "capacityplanning"
		worlds       = 1000
		trials       = 60
		stragglerP   = 0.25
		shardTimeout = 250 * time.Millisecond
		chaosSeed    = 20260808
		// warmups seeds the adaptive hedge's latency window (2 shard samples
		// per evaluate; the P95 needs 16) before chaos switches on.
		warmups = 12
	)
	section(fmt.Sprintf("RESILIENCE: hedged vs unhedged tails under %d%% stragglers, plus load shedding (%s)",
		int(stragglerP*100), scenarioName))

	report := resilienceBenchReport{
		Benchmark:      "resilience",
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Scenario:       scenarioName,
		Worlds:         worlds,
		Trials:         trials,
		StragglerP:     stragglerP,
		ShardTimeoutMs: float64(shardTimeout.Microseconds()) / 1000,
		HedgeMode:      "adaptive-p95",
		MaxConcurrent:  2,
		Offered:        32,
	}

	// measure runs `trials` one-point evaluations through a fresh
	// coordinator whose second worker hangs stragglerP of exchanges, and
	// returns the per-trial latencies plus the hedge counters.
	measure := func(hedge time.Duration) ([]time.Duration, int64, int64, error) {
		sysW1, err := newWireSystem()
		if err != nil {
			return nil, 0, 0, err
		}
		sysW2, err := newWireSystem()
		if err != nil {
			return nil, 0, 0, err
		}
		sysC, err := newWireSystem()
		if err != nil {
			return nil, 0, 0, err
		}
		w1, err := server.New(server.Config{System: sysW1, WorkerMode: true})
		if err != nil {
			return nil, 0, 0, err
		}
		defer w1.Close()
		w1ts := httptest.NewServer(w1)
		defer w1ts.Close()
		w2, err := server.New(server.Config{System: sysW2, WorkerMode: true})
		if err != nil {
			return nil, 0, 0, err
		}
		defer w2.Close()
		w2ts := httptest.NewServer(w2)
		defer w2ts.Close()
		proxy := protocoltest.New(w2ts.URL)
		defer proxy.Close()

		coord, err := server.New(server.Config{
			System:         sysC,
			Workers:        []string{w1ts.URL, proxy.URL()},
			DefaultWorlds:  worlds,
			ShardTimeout:   shardTimeout,
			HedgeDelay:     hedge,
			WorkerCooldown: -1, // breakers off: keep routing constant, isolate hedging
			RetryBackoff:   time.Millisecond,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		defer coord.Close()
		cts := httptest.NewServer(coord)
		defer cts.Close()

		var scn struct {
			ID     string `json:"id"`
			Params []struct {
				Name   string `json:"name"`
				Values []any  `json:"values"`
			} `json:"params"`
		}
		reg := map[string]any{"sql": sqlparser.ExampleScenarios()[scenarioName]}
		if err := wireCall(ctx, "POST", cts.URL+"/scenarios", reg, &scn); err != nil {
			return nil, 0, 0, err
		}
		pt := map[string]any{}
		for _, p := range scn.Params {
			pt[p.Name] = p.Values[0]
		}
		req := map[string]any{"points": []map[string]any{pt}, "worlds": worlds}
		evalURL := cts.URL + "/scenarios/" + scn.ID + "/evaluate"

		// Warm up fault-free: the one-time full-payload re-send, scenario
		// compilation, and enough shard-latency samples for the adaptive
		// hedge's P95 all happen here, not inside a timed trial.
		for i := 0; i < warmups; i++ {
			if err := wireCall(ctx, "POST", evalURL, req, nil); err != nil {
				return nil, 0, 0, err
			}
		}
		proxy.SetChaos(chaosSeed, 0, stragglerP, 0)

		var latencies []time.Duration
		for i := 0; i < trials; i++ {
			if err := ctx.Err(); err != nil {
				return nil, 0, 0, err
			}
			start := time.Now()
			if err := wireCall(ctx, "POST", evalURL, req, nil); err != nil {
				return nil, 0, 0, err
			}
			latencies = append(latencies, time.Since(start))
		}
		hedges, err := scrapeCounter(cts.URL, "fpserver_shard_hedges_total")
		if err != nil {
			return nil, 0, 0, err
		}
		wins, err := scrapeCounter(cts.URL, "fpserver_shard_hedge_wins_total")
		if err != nil {
			return nil, 0, 0, err
		}
		return latencies, int64(hedges), int64(wins), nil
	}

	unhedged, _, _, err := measure(-1)
	if err != nil {
		return err
	}
	hedged, hedges, wins, err := measure(0) // 0 = adaptive P95
	if err != nil {
		return err
	}
	report.UnhedgedP50Ms = percentileMs(unhedged, 50)
	report.UnhedgedP99Ms = percentileMs(unhedged, 99)
	report.HedgedP50Ms = percentileMs(hedged, 50)
	report.HedgedP99Ms = percentileMs(hedged, 99)
	if report.HedgedP99Ms > 0 {
		report.P99Speedup = report.UnhedgedP99Ms / report.HedgedP99Ms
	}
	report.Hedges, report.HedgeWins = hedges, wins
	if hedges > 0 {
		report.HedgeWinRate = float64(wins) / float64(hedges)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "unhedged", "hedged")
	fmt.Printf("%-28s %10.1fms %10.1fms\n", "evaluate p50", report.UnhedgedP50Ms, report.HedgedP50Ms)
	fmt.Printf("%-28s %10.1fms %10.1fms\n", "evaluate p99", report.UnhedgedP99Ms, report.HedgedP99Ms)
	fmt.Printf("p99 speedup: %.1fx; hedges: %d, wins: %d (%.0f%% win rate)\n",
		report.P99Speedup, report.Hedges, report.HedgeWins, report.HedgeWinRate*100)

	// ---- load shedding under a concurrency cap ----

	sysL, err := newWireSystem()
	if err != nil {
		return err
	}
	capped, err := server.New(server.Config{
		System:               sysL,
		DefaultWorlds:        worlds,
		MaxConcurrentRenders: report.MaxConcurrent,
	})
	if err != nil {
		return err
	}
	defer capped.Close()
	lts := httptest.NewServer(capped)
	defer lts.Close()
	var scn struct {
		ID     string `json:"id"`
		Params []struct {
			Name   string `json:"name"`
			Values []any  `json:"values"`
		} `json:"params"`
	}
	reg := map[string]any{"sql": sqlparser.ExampleScenarios()[scenarioName]}
	if err := wireCall(ctx, "POST", lts.URL+"/scenarios", reg, &scn); err != nil {
		return err
	}
	pt := map[string]any{}
	for _, p := range scn.Params {
		pt[p.Name] = p.Values[0]
	}
	// Offer far more concurrent renders than 2 slots can clear within the
	// 300ms budgets. Each request evaluates a DIFFERENT grid point — with
	// one shared point, fingerprint reuse makes repeats nearly free and
	// nothing holds a slot long enough to shed.
	calURL := lts.URL + "/scenarios/" + scn.ID + "/evaluate"
	if err := wireCall(ctx, "POST", calURL,
		map[string]any{"points": []map[string]any{pt}, "worlds": worlds}, nil); err != nil {
		return err
	}
	burstPoint := func(i int) map[string]any {
		out := map[string]any{}
		for _, p := range scn.Params {
			out[p.Name] = p.Values[i%len(p.Values)]
			i /= len(p.Values)
		}
		return out
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < report.Offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			burstReq := map[string]any{"points": []map[string]any{burstPoint(i)}, "worlds": worlds}
			code := http.StatusInternalServerError
			err := wireCall(ctx, "POST", lts.URL+"/scenarios/"+scn.ID+"/evaluate?timeout=300ms", burstReq, nil)
			if err == nil {
				code = http.StatusOK
			} else if s := err.Error(); strings.Contains(s, ": 429:") {
				code = http.StatusTooManyRequests
			} else if strings.Contains(s, ": 504:") {
				code = http.StatusGatewayTimeout
			}
			mu.Lock()
			codes[code]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	report.Completed = codes[http.StatusOK]
	report.Shed = codes[http.StatusTooManyRequests]
	report.DeadlineExpired = codes[http.StatusGatewayTimeout]
	report.ShedRate = float64(report.Shed) / float64(report.Offered)
	fmt.Printf("shedding: %d offered at cap %d -> %d completed, %d shed 429 (%.0f%%), %d deadline 504, %d other\n",
		report.Offered, report.MaxConcurrent, report.Completed, report.Shed, report.ShedRate*100,
		report.DeadlineExpired, report.Offered-report.Completed-report.Shed-report.DeadlineExpired)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (p99 speedup under stragglers: %.1fx)\n", outPath, report.P99Speedup)
	return nil
}
