package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fuzzyprophet/internal/benchfix"
	"fuzzyprophet/internal/core"
	"fuzzyprophet/internal/mc"
	"fuzzyprophet/internal/scenario"
	"fuzzyprophet/internal/sqlparser"
	"fuzzyprophet/internal/storage"
)

// The storage experiment: the out-of-core spill tier's cost model. A basis
// distribution can be served three ways, in ascending cost — from the RAM
// tier (a map lookup), from a memory-mapped spill-tier column file (a
// fault-back + CRC-verified view), or by re-simulating the VG-Function
// from scratch. The spill tier is worth having exactly when the mapped hit
// sits well below re-simulation; this experiment measures all three on the
// five example scenarios' render path, plus raw store-level demotion and
// promotion throughput, and writes BENCH_storage.json for CI artifact
// upload and the README's performance section.

// storageBenchResult is one scenario's render-path measurement: the same
// point evaluated with all bases RAM-resident, with all bases faulting
// back from the spill tier, and with no reuse at all.
type storageBenchResult struct {
	Scenario      string  `json:"scenario"`
	HotNsPerOp    float64 `json:"hot_ns_per_op"`
	MappedNsPerOp float64 `json:"mapped_ns_per_op"`
	ResimNsPerOp  float64 `json:"resimulate_ns_per_op"`
	// MappedVsResim is resimulate/mapped: how much cheaper a spill-tier
	// fault-back is than re-running the VG-Functions.
	MappedVsResim float64 `json:"mapped_vs_resimulate_speedup"`
}

// storageBenchReport is the BENCH_storage.json schema.
type storageBenchReport struct {
	Benchmark string `json:"benchmark"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Worlds    int    `json:"worlds"`
	// Store-level microbenchmarks over Vectors basis vectors of Worlds
	// samples each: Get latency when RAM-resident vs when every lookup
	// faults a mapped view back from disk, and bulk demotion/promotion
	// throughput.
	Vectors          int                  `json:"vectors"`
	HotGetNsPerOp    float64              `json:"hot_get_ns_per_op"`
	MappedGetNsPerOp float64              `json:"mapped_get_ns_per_op"`
	SpillMBPerSec    float64              `json:"spill_mb_per_sec"`
	PromoteMBPerSec  float64              `json:"promote_mb_per_sec"`
	Results          []storageBenchResult `json:"results"`
}

// storageVec fills a deterministic basis vector (the values don't matter,
// only that payloads are realistic and distinct).
func storageVec(i, worlds int) []float64 {
	v := make([]float64, worlds)
	for w := range v {
		v[w] = float64(i)*1e3 + float64(w)*0.5
	}
	return v
}

// runStorageBench is experiment "storage".
func runStorageBench(ctx context.Context, worlds int, outPath string) error {
	section(fmt.Sprintf("STORAGE: hot vs mapped vs re-simulate basis access (%d worlds)", worlds))

	report := storageBenchReport{
		Benchmark: "storage-spill",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Worlds:    worlds,
		Vectors:   256,
	}
	if err := storeMicroBench(ctx, worlds, &report); err != nil {
		return err
	}
	fmt.Printf("store-level Get over %d×%d-world vectors:\n", report.Vectors, worlds)
	fmt.Printf("  %-24s %12.0f ns/op\n", "hot (RAM tier)", report.HotGetNsPerOp)
	fmt.Printf("  %-24s %12.0f ns/op\n", "mapped (spill tier)", report.MappedGetNsPerOp)
	fmt.Printf("  demotion  %8.1f MB/s   promotion  %8.1f MB/s\n\n",
		report.SpillMBPerSec, report.PromoteMBPerSec)

	reg, err := benchfix.Registry()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14s %14s %14s %10s\n",
		"scenario", "hot ns/op", "mapped ns/op", "resim ns/op", "resim/map")
	for _, name := range sqlparser.ExampleScenarioNames() {
		src := sqlparser.ExampleScenarios()[name]
		scn, err := scenario.Compile(src, reg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if name == "serverfleet" {
			regions, err := benchfix.RegionsTable()
			if err != nil {
				return err
			}
			if err := scn.AddTable(regions); err != nil {
				return err
			}
		}
		res, err := storageScenarioBench(ctx, scn, worlds)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Scenario = name
		report.Results = append(report.Results, *res)
		fmt.Printf("%-16s %14.0f %14.0f %14.0f %9.1fx\n",
			name, res.HotNsPerOp, res.MappedNsPerOp, res.ResimNsPerOp, res.MappedVsResim)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}

// storeMicroBench fills the store-level fields of the report: Get latency
// against the RAM tier and against the spill tier, and bulk
// demotion/promotion throughput. The spill store's RAM budget fits only a
// couple of vectors, so every Put demotes its predecessor and every
// round-robin Get faults a mapped view back from disk (the promoted entry
// is itself displaced — for free, since its spill copy is current — by the
// next promotion).
func storeMicroBench(ctx context.Context, worlds int, report *storageBenchReport) error {
	n := report.Vectors
	payload := int64(worlds) * 8
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("b%04d", i)
	}

	// Hot tier: everything RAM-resident.
	hot, err := storage.Open(storage.Options{})
	if err != nil {
		return err
	}
	defer hot.Close()
	for i, k := range keys {
		hot.Put("site", k, storageVec(i, worlds))
	}
	report.HotGetNsPerOp = timeGets(ctx, hot, keys)

	// Spill tier: RAM budget of roughly two vectors.
	dir, err := os.MkdirTemp("", "fpbench-storage-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	spill, err := storage.Open(storage.Options{
		BudgetBytes: 2 * (payload + 512),
		SpillDir:    dir,
	})
	if err != nil {
		return err
	}
	defer spill.Close()

	start := time.Now()
	for i, k := range keys {
		spill.Put("site", k, storageVec(i, worlds))
	}
	if err := spill.Sync(); err != nil {
		return err
	}
	writeSecs := time.Since(start).Seconds()
	report.SpillMBPerSec = float64(int64(n)*payload) / writeSecs / (1 << 20)

	report.MappedGetNsPerOp = timeGets(ctx, spill, keys)
	report.PromoteMBPerSec = float64(payload) / report.MappedGetNsPerOp * 1e9 / (1 << 20)

	st := spill.Stats()
	if st.SpillErrors != 0 || st.Quarantined != 0 {
		return fmt.Errorf("spill tier errors during microbench: %+v", st)
	}
	if st.Promoted == 0 {
		return fmt.Errorf("mapped-Get loop never promoted (budget too large?): %+v", st)
	}
	return nil
}

// timeGets measures the mean Get latency over the keys, round-robin, for
// at least 200ms of wall clock.
func timeGets(ctx context.Context, s *storage.Store, keys []string) float64 {
	const minDur = 200 * time.Millisecond
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur || iters < len(keys) {
		if ctx.Err() != nil {
			break
		}
		k := keys[iters%len(keys)]
		if _, ok := s.Get("site", k); !ok {
			panic("bench key missing: " + k)
		}
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// storageScenarioBench times EvaluatePoint at the scenario's default point
// under the three serving modes.
func storageScenarioBench(ctx context.Context, scn *scenario.Scenario, worlds int) (*storageBenchResult, error) {
	pt := scn.DefaultPoint()
	const minIters, minDur = 10, 150 * time.Millisecond
	evalOp := func(ev *mc.Evaluator) func() error {
		return func() error {
			_, err := ev.EvaluatePoint(ctx, pt)
			return err
		}
	}

	// Re-simulate: no reuse store at all — every op runs the VG-Functions.
	resim := mc.NewEvaluator(scn, mc.Options{Worlds: worlds})
	resimNs, _, _, err := timeEngine(ctx, evalOp(resim), minIters, minDur)
	if err != nil {
		return nil, err
	}

	// Hot: warm unbounded-RAM reuse — every op serves bases from the map.
	hotReuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{})
	if err != nil {
		return nil, err
	}
	hotNs, _, _, err := timeEngine(ctx, evalOp(mc.NewEvaluator(scn, mc.Options{Worlds: worlds, Reuse: hotReuse})), minIters, minDur)
	if err != nil {
		return nil, err
	}

	// Mapped: a RAM budget below even a single basis plus a spill tier —
	// every basis demotes right after insertion or promotion (the RAM tier
	// degenerates to a pass-through), so every op faults each basis back
	// from its column file. The sub-entry budget matters for single-site
	// scenarios, whose lone basis would otherwise stay resident.
	dir, err := os.MkdirTemp("", "fpbench-storage-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	mappedReuse, err := mc.NewReuse(core.DefaultConfig(), storage.Options{
		BudgetBytes: int64(worlds) * 4,
		SpillDir:    dir,
	})
	if err != nil {
		return nil, err
	}
	defer mappedReuse.Close()
	mappedNs, _, _, err := timeEngine(ctx, evalOp(mc.NewEvaluator(scn, mc.Options{Worlds: worlds, Reuse: mappedReuse})), minIters, minDur)
	if err != nil {
		return nil, err
	}
	if st := mappedReuse.StoreStats(); st.SpillErrors != 0 || st.Quarantined != 0 {
		return nil, fmt.Errorf("spill tier errors: %+v", st)
	} else if st.Demoted == 0 {
		return nil, fmt.Errorf("mapped run never spilled: %+v", st)
	}

	return &storageBenchResult{
		HotNsPerOp:    hotNs,
		MappedNsPerOp: mappedNs,
		ResimNsPerOp:  resimNs,
		MappedVsResim: resimNs / mappedNs,
	}, nil
}
