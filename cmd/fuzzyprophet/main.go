// Command fuzzyprophet runs a Fuzzy Prophet scenario file in online or
// offline mode.
//
// Online mode renders the scenario's GRAPH as an ASCII chart at given
// slider positions, optionally applies adjustments and re-renders, showing
// how much of the graph was served by fingerprint reuse:
//
//	fuzzyprophet -scenario demo.fp -mode online \
//	    -set purchase1=16 -set purchase2=32 -adjust purchase1=24
//
// Offline mode runs the scenario's OPTIMIZE statement over the whole
// parameter space and prints the feasible groups and the optimum:
//
//	fuzzyprophet -scenario demo.fp -mode offline -worlds 300
//
// With -explain the scenario is rendered once under a trace and the
// stage/operator time breakdown is printed instead of the chart:
//
//	fuzzyprophet -explain -worlds 400
//
// With no -scenario flag the paper's Figure 2 demo scenario is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/buildinfo"
	"fuzzyprophet/internal/cli"
)

// figure2 is the built-in demo scenario (paper Figure 2, step-8 purchase
// grid, prose threshold 5%, ordered purchases).
const figure2 = `
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 8;
DECLARE PARAMETER @feature AS SET (12,36,44);

SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;

GRAPH OVER @current
      EXPECT overload WITH bold red,
      EXPECT capacity WITH blue y2,
      EXPECT_STDDEV demand WITH orange y2;

OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.05 AND @purchase1 <= @purchase2
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2;
`

type paramFlags []string

func (p *paramFlags) String() string { return strings.Join(*p, ",") }
func (p *paramFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file (default: built-in Figure 2 demo)")
		mode         = flag.String("mode", "online", "online | offline | sql")
		worlds       = flag.Int("worlds", 400, "Monte Carlo worlds per point")
		seed         = flag.Uint64("seed", 0, "world seed base (0 = default)")
		noReuse      = flag.Bool("noreuse", false, "disable fingerprint reuse")
		storeBudget  = flag.Int64("store-budget", 0, "basis-store RAM budget in bytes (0 = unbounded)")
		spillDir     = flag.String("spill-dir", "", "directory for out-of-core basis spill (empty = RAM-only)")
		spillBudget  = flag.Int64("spill-budget", 0, "spill-tier disk budget in bytes (0 = unbounded)")
		height       = flag.Int("height", 14, "chart height in rows")
		// The §3.3 demo knobs: vary the simulation characteristics.
		initialCapacity = flag.Float64("initial-capacity", 0, "override the fleet's week-0 capacity (cores)")
		batchCores      = flag.Float64("batch-cores", 0, "override the capacity one purchase adds")
		demandBase      = flag.Float64("demand-base", 0, "override expected week-0 demand")
		demandGrowth    = flag.Float64("demand-growth", 0, "override expected weekly demand growth")
		explain         = flag.Bool("explain", false, "render once and print the stage/operator time breakdown instead of the chart")
		version         = flag.Bool("version", false, "print version and exit")
		sets            paramFlags
		adjusts         paramFlags
	)
	flag.Var(&sets, "set", "initial slider position, param=value (repeatable)")
	flag.Var(&adjusts, "adjust", "adjustment applied after the first render, param=value (repeatable)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("fuzzyprophet"))
		return
	}

	// Ctrl-C (or SIGTERM) cancels the context; every simulation loop checks
	// it per world-batch, so a long render or sweep aborts cleanly instead
	// of running to completion.
	ctx, stop := cli.SignalContext()
	defer stop()

	src := figure2
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	sys, err := fp.New(fp.WithCalibratedDemoModels(fp.Calibration{
		InitialCapacity: *initialCapacity,
		BatchCores:      *batchCores,
		DemandBase:      *demandBase,
		DemandGrowth:    *demandGrowth,
	}))
	if err != nil {
		fatal(err)
	}
	scn, err := sys.Compile(src)
	if err != nil {
		fatal(err)
	}
	opts := []fp.EvalOption{fp.WithWorlds(*worlds), fp.WithSeedBase(*seed)}
	if *noReuse {
		opts = append(opts, fp.WithoutReuse())
	}
	if *storeBudget > 0 {
		opts = append(opts, fp.WithStoreBudget(*storeBudget))
	}
	if *spillDir != "" {
		opts = append(opts, fp.WithSpillDir(*spillDir), fp.WithSpillBudget(*spillBudget))
	}

	if *explain {
		runExplain(ctx, scn, opts, sets)
		return
	}

	switch *mode {
	case "online":
		runOnline(ctx, scn, opts, sets, adjusts, *height)
	case "offline":
		runOffline(ctx, sys, scn, opts)
	case "sql":
		runSQL(scn, sets)
	default:
		fatal(fmt.Errorf("unknown mode %q (want online, offline or sql)", *mode))
	}
}

func runOnline(ctx context.Context, scn *fp.Scenario, opts []fp.EvalOption, sets, adjusts paramFlags, height int) {
	session, err := scn.OpenSession(opts...)
	if err != nil {
		fatal(err)
	}
	if err := applyParams(session, sets); err != nil {
		fatal(err)
	}
	g, err := session.Render(ctx)
	if err != nil {
		fatal(err)
	}
	chart, err := session.Ascii(g, height)
	if err != nil {
		fatal(err)
	}
	fmt.Println(chart)
	if len(adjusts) == 0 {
		return
	}
	if err := applyParams(session, adjusts); err != nil {
		fatal(err)
	}
	fmt.Printf("--- after adjusting %s ---\n", adjusts.String())
	g, err = session.Render(ctx)
	if err != nil {
		fatal(err)
	}
	chart, err = session.Ascii(g, height)
	if err != nil {
		fatal(err)
	}
	fmt.Println(chart)
	fmt.Printf("reuse outcomes: %v\n", session.ReuseCounts())
}

// runExplain renders the scenario once under a RenderTrace and prints the
// merged stage/operator breakdown: where a render's time goes (simulate
// vs. plan execution vs. merge), per-kernel row counts, spill work.
func runExplain(ctx context.Context, scn *fp.Scenario, opts []fp.EvalOption, sets paramFlags) {
	session, err := scn.OpenSession(opts...)
	if err != nil {
		fatal(err)
	}
	if err := applyParams(session, sets); err != nil {
		fatal(err)
	}
	rt := fp.NewRenderTrace()
	if _, err := session.Render(fp.WithTrace(ctx, rt)); err != nil {
		fatal(err)
	}
	rt.End()
	fmt.Printf("render %s (%v)\n\n", rt.ID(), rt.Duration().Round(time.Microsecond))
	fmt.Print(rt.Format())
	fmt.Printf("\nreuse outcomes: %v\n", session.ReuseCounts())
}

func runOffline(ctx context.Context, sys *fp.System, scn *fp.Scenario, opts []fp.EvalOption) {
	sys.ResetVGInvocations()
	lastPct := -1
	res, err := scn.Optimize(ctx, func(done, total int, pt map[string]any, outcome map[string]string) {
		pct := done * 100 / total
		if pct/10 != lastPct/10 {
			fmt.Fprintf(os.Stderr, "\r%3d%% (%d/%d points)", pct, done, total)
			lastPct = pct
		}
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("explored %d points in %v; VG invocations %d; reuse %v\n\n",
		res.PointsEvaluated, res.Elapsed.Round(1e6), sys.VGInvocations(), res.ReuseCounts)

	rows := append([]fp.OptimizeRow(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		return groupKey(rows[i]) < groupKey(rows[j])
	})
	nFeasible := 0
	for _, r := range rows {
		if r.Feasible {
			nFeasible++
		}
	}
	fmt.Printf("feasible groups: %d / %d\n", nFeasible, len(rows))
	for _, b := range res.Best {
		fmt.Printf("OPTIMUM: %s   metrics: %v\n", groupKey(b), fmtMetrics(b.Metrics))
	}
}

func runSQL(scn *fp.Scenario, sets paramFlags) {
	point := map[string]any{}
	for _, p := range scn.Params() {
		point[p.Name] = p.Values[0]
	}
	for _, kv := range sets {
		name, val, err := splitParam(kv)
		if err != nil {
			fatal(err)
		}
		point[name] = val
	}
	sql, err := scn.GeneratedSQL(point)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- pure TSQL emitted by the Query Generator for point", point)
	fmt.Println(sql)
}

func applyParams(session *fp.Session, kvs paramFlags) error {
	for _, kv := range kvs {
		name, val, err := splitParam(kv)
		if err != nil {
			return err
		}
		if err := session.SetParam(name, val); err != nil {
			return err
		}
	}
	return nil
}

func splitParam(kv string) (string, any, error) {
	i := strings.IndexByte(kv, '=')
	if i <= 0 {
		return "", nil, fmt.Errorf("bad parameter setting %q (want name=value)", kv)
	}
	name := strings.TrimPrefix(kv[:i], "@")
	raw := kv[i+1:]
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return name, n, nil
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return name, f, nil
	}
	return name, raw, nil
}

func groupKey(r fp.OptimizeRow) string {
	names := make([]string, 0, len(r.Group))
	for n := range r.Group {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%v", n, r.Group[n])
	}
	return strings.Join(parts, " ")
}

func fmtMetrics(m map[string]float64) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%.4f", n, m[n])
	}
	return strings.Join(parts, " ")
}

// fatal reports the error and exits. Context cancellation — Ctrl-C during
// any mode — gets the conventional 128+SIGINT exit code so scripts can tell
// an interrupt from a real failure.
func fatal(err error) {
	cli.Fatal("fuzzyprophet", err)
}
