// Command fplint runs the repository's invariant analyzers — the machine-
// checked form of the determinism, panic-isolation, pooled-buffer, and
// concurrency contracts documented in docs/STATIC_ANALYSIS.md — over a set
// of package patterns, vet-style:
//
//	go run ./cmd/fplint ./...          # whole repo (what CI runs)
//	go run ./cmd/fplint -list          # inventory of analyzers
//	go run ./cmd/fplint -run fpdeterminism ./internal/mc/...
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"fuzzyprophet/internal/buildinfo"
	"fuzzyprophet/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	run := flag.String("run", "", "run only analyzers whose name matches this regexp")
	version := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fplint [-list] [-run regexp] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("fplint"))
		return
	}

	analyzers := lint.Suite()
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplint: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		var keep []*lint.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fplint: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
