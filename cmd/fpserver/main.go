// Command fpserver runs Fuzzy Prophet as a long-running multi-tenant HTTP
// service: scenarios are compiled and registered over the wire, sessions
// hold slider state server-side, renders stream with fingerprint reuse
// shared across every client of a scenario, and the reuse state survives
// restarts through disk snapshots.
//
//	fpserver -addr :8080 -snapshot-dir /var/lib/fpserver
//
// Then drive the paper workflow with curl (see the README's "Running the
// server" section for the full tour):
//
//	curl -s localhost:8080/scenarios -d '{"sql": "DECLARE PARAMETER ..."}'
//	curl -s localhost:8080/scenarios/<id>/sessions -X POST -d '{}'
//	curl -s localhost:8080/sessions/<id>/render
//
// For fleet-scale rendering, run shard workers and point a coordinator at
// them (see the README's "World sharding" section): every render's Monte
// Carlo world range is split across the workers and stitched back
// bit-identically, with per-shard retry and local fallback.
//
//	fpserver -worker -addr :8081
//	fpserver -worker -addr :8082
//	fpserver -addr :8080 -workers http://localhost:8081,http://localhost:8082
//
// A SIGINT/SIGTERM shuts down gracefully: in-flight requests finish,
// sessions drain, and every scenario's reuse cache is snapshotted so the
// next boot starts warm.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	fp "fuzzyprophet"
	"fuzzyprophet/internal/buildinfo"
	"fuzzyprophet/internal/cli"
	"fuzzyprophet/internal/server"
)

func main() {
	var (
		addr             = flag.String("addr", ":8080", "listen address")
		worlds           = flag.Int("worlds", 400, "default Monte Carlo worlds per point")
		maxSessions      = flag.Int("max-sessions", 256, "concurrent session limit (excess opens get 429)")
		sessionTTL       = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this")
		snapshotDir      = flag.String("snapshot-dir", "", "directory for reuse snapshots (empty = no persistence)")
		snapshotInterval = flag.Duration("snapshot-interval", time.Minute, "how often to persist reuse caches")
		storeBudget      = flag.Int64("store-budget", 0, "per-scenario basis-store budget in bytes (0 = unbounded)")
		spillDir         = flag.String("spill-dir", "", "directory for out-of-core basis spill (empty = RAM-only stores)")
		spillBudget      = flag.Int64("spill-budget", 0, "per-tier spill disk budget in bytes (0 = unbounded)")
		enablePprof      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ (do not expose publicly)")
		workerMode       = flag.Bool("worker", false, "run as a shard worker: serve only POST /shard/render (+ health/metrics)")
		workerURLs       = flag.String("workers", "", "comma-separated shard-worker base URLs; renders fan out across them")
		shardTimeout     = flag.Duration("shard-timeout", 2*time.Minute, "per-shard-request timeout against workers (<0 disables)")
		workerCooldown   = flag.Duration("worker-cooldown", 5*time.Second, "circuit-breaker base open window for a failed worker (<0 disables)")
		breakerThreshold = flag.Int("breaker-threshold", 1, "consecutive shard failures that open a worker's circuit breaker")
		requestTimeout   = flag.Duration("request-timeout", time.Minute, "server-side deadline budget per render/evaluate request; ?timeout= can shorten it (<0 disables)")
		maxRenders       = flag.Int("max-concurrent-renders", 0, "concurrent render/evaluate limit; excess queues briefly then gets 429 (0 = unbounded)")
		hedgeDelay       = flag.Duration("hedge-delay", 0, "outstanding time before a shard request is hedged on a second worker (0 = adaptive P95, <0 disables)")
		retryBackoff     = flag.Duration("retry-backoff", 10*time.Millisecond, "base jittered backoff between shard retries (<0 disables)")
		slowRender       = flag.Duration("slow-render-threshold", time.Second, "log renders at/above this duration and retain their traces at /debug/traces (<0 disables)")
		traceBuffer      = flag.Int("trace-buffer", 32, "how many slow-render traces /debug/traces retains")
		version          = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("fpserver"))
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	var workers []string
	for _, u := range strings.Split(*workerURLs, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workers = append(workers, strings.TrimRight(u, "/"))
		}
	}
	if *workerMode && len(workers) > 0 {
		cli.Fatal("fpserver", fmt.Errorf("-worker and -workers are mutually exclusive (a worker never fans out)"))
	}

	if err := run(ctx, config{
		addr:             *addr,
		worlds:           *worlds,
		maxSessions:      *maxSessions,
		sessionTTL:       *sessionTTL,
		snapshotDir:      *snapshotDir,
		snapshotInterval: *snapshotInterval,
		storeBudget:      *storeBudget,
		spillDir:         *spillDir,
		spillBudget:      *spillBudget,
		enablePprof:      *enablePprof,
		workerMode:       *workerMode,
		workers:          workers,
		shardTimeout:     *shardTimeout,
		workerCooldown:   *workerCooldown,
		breakerThreshold: *breakerThreshold,
		requestTimeout:   *requestTimeout,
		maxRenders:       *maxRenders,
		hedgeDelay:       *hedgeDelay,
		retryBackoff:     *retryBackoff,
		slowRender:       *slowRender,
		traceBuffer:      *traceBuffer,
	}); err != nil {
		cli.Fatal("fpserver", err)
	}
}

type config struct {
	addr             string
	worlds           int
	maxSessions      int
	sessionTTL       time.Duration
	snapshotDir      string
	snapshotInterval time.Duration
	storeBudget      int64
	spillDir         string
	spillBudget      int64
	enablePprof      bool
	workerMode       bool
	workers          []string
	shardTimeout     time.Duration
	workerCooldown   time.Duration
	breakerThreshold int
	requestTimeout   time.Duration
	maxRenders       int
	hedgeDelay       time.Duration
	retryBackoff     time.Duration
	slowRender       time.Duration
	traceBuffer      int
}

func run(ctx context.Context, cfg config) error {
	logger := log.New(os.Stderr, "fpserver: ", log.LstdFlags)
	logger.Printf("%s", buildinfo.String("fpserver"))

	sys, err := fp.New(fp.WithDemoModels())
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		System:               sys,
		DefaultWorlds:        cfg.worlds,
		MaxSessions:          cfg.maxSessions,
		SessionTTL:           cfg.sessionTTL,
		SnapshotDir:          cfg.snapshotDir,
		SnapshotInterval:     cfg.snapshotInterval,
		StoreBudget:          cfg.storeBudget,
		SpillDir:             cfg.spillDir,
		SpillBudget:          cfg.spillBudget,
		EnablePprof:          cfg.enablePprof,
		WorkerMode:           cfg.workerMode,
		Workers:              cfg.workers,
		ShardTimeout:         cfg.shardTimeout,
		WorkerCooldown:       cfg.workerCooldown,
		BreakerThreshold:     cfg.breakerThreshold,
		RequestTimeout:       cfg.requestTimeout,
		MaxConcurrentRenders: cfg.maxRenders,
		HedgeDelay:           cfg.hedgeDelay,
		RetryBackoff:         cfg.retryBackoff,
		Logf:                 logger.Printf,
		Log:                  slog.New(slog.NewTextHandler(os.Stderr, nil)),
		SlowRenderThreshold:  cfg.slowRender,
		TraceBuffer:          cfg.traceBuffer,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		switch {
		case cfg.workerMode:
			logger.Printf("listening on %s (shard worker)", cfg.addr)
		case len(cfg.workers) > 0:
			logger.Printf("listening on %s (coordinator for %d shard worker(s): %s; snapshots: %s)",
				cfg.addr, len(cfg.workers), strings.Join(cfg.workers, ", "), orNone(cfg.snapshotDir))
		default:
			logger.Printf("listening on %s (snapshots: %s)", cfg.addr, orNone(cfg.snapshotDir))
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if closeErr := srv.Close(); closeErr != nil {
		logger.Printf("final snapshot: %v", closeErr)
		if shutdownErr == nil {
			shutdownErr = closeErr
		}
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	logger.Printf("bye")
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
