package fuzzyprophet_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks checks every relative markdown link in README.md and
// docs/*.md points at a file or directory that exists, so the docs cannot
// silently rot as the tree moves. External links (scheme prefixes) and
// pure in-page anchors are skipped. CI runs this in the docs job.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	docEntries, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docEntries...)
	if len(docEntries) == 0 {
		t.Fatal("no docs/*.md files found")
	}
	linkRe := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-page anchor from a file link.
			if i := strings.Index(target, "#"); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", f, m[1], resolved, err)
			}
		}
	}
}
